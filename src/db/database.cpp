#include "db/database.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace goofi::db {

namespace fs = std::filesystem;

Status Database::CreateTable(TableSchema schema) {
  if (schema.table_name().empty()) {
    return InvalidArgumentError("table name must not be empty");
  }
  if (tables_.count(schema.table_name()) != 0) {
    return AlreadyExistsError("table '" + schema.table_name() +
                              "' already exists");
  }
  if (schema.column_count() == 0) {
    return InvalidArgumentError("table '" + schema.table_name() +
                                "' has no columns");
  }
  for (const ForeignKey& fk : schema.foreign_keys()) {
    // Self-references (LoggedSystemState.parentExperiment) are allowed.
    const bool self = fk.ref_table == schema.table_name();
    const TableSchema* parent_schema = nullptr;
    if (self) {
      parent_schema = &schema;
    } else {
      const Table* parent = FindTable(fk.ref_table);
      if (parent == nullptr) {
        return InvalidArgumentError("foreign key on '" + fk.column +
                                    "' references missing table '" +
                                    fk.ref_table + "'");
      }
      parent_schema = &parent->schema();
    }
    const auto ref_index = parent_schema->FindColumn(fk.ref_column);
    if (!ref_index) {
      return InvalidArgumentError("foreign key references missing column '" +
                                  fk.ref_table + "." + fk.ref_column + "'");
    }
    if (!parent_schema->columns()[*ref_index].unique) {
      return InvalidArgumentError(
          "foreign key must reference a PRIMARY KEY or UNIQUE column, but '" +
          fk.ref_table + "." + fk.ref_column + "' is neither");
    }
  }
  const std::string name = schema.table_name();
  tables_.emplace(name, std::make_unique<Table>(std::move(schema)));
  MarkDirty(name);
  return LogRecord(
      wal::EncodeSchemaRecord(SerializeSchema(tables_[name]->schema())));
}

Status Database::DropTable(const std::string& name) {
  if (tables_.count(name) == 0) {
    return NotFoundError("no table '" + name + "'");
  }
  for (const auto& [other_name, other] : tables_) {
    if (other_name == name) continue;
    for (const ForeignKey& fk : other->schema().foreign_keys()) {
      if (fk.ref_table == name) {
        return ConstraintViolationError("cannot drop '" + name +
                                        "': referenced by '" + other_name +
                                        "." + fk.column + "'");
      }
    }
  }
  tables_.erase(name);
  dirty_tables_.erase(name);
  table_snapshot_gen_.erase(name);
  return LogRecord(wal::EncodeDropRecord(name));
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) != 0;
}

Table* Database::FindTable(const std::string& name) {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Database::CheckForeignKeysForRow(const Table& table,
                                        const Row& row) const {
  for (const ForeignKey& fk : table.schema().foreign_keys()) {
    const auto col = table.schema().FindColumn(fk.column);
    const Value& value = row[*col];
    if (value.is_null()) continue;  // NULL FK = no parent required
    const Table* parent = FindTable(fk.ref_table);
    const auto ref_col = parent->schema().FindColumn(fk.ref_column);
    if (fk.ref_table == table.schema().table_name() &&
        row[*ref_col] == value) {
      continue;  // self-referencing row is its own parent
    }
    if (!parent->ContainsValue(*ref_col, value)) {
      return ConstraintViolationError(
          "foreign key violated: " + table.schema().table_name() + "." +
          fk.column + " = " + value.ToDisplayString() +
          " has no parent in " + fk.ref_table + "." + fk.ref_column);
    }
  }
  return Status::Ok();
}

bool Database::HasReferencingChild(const std::string& parent_table,
                                   const std::string& parent_column,
                                   const Value& key) const {
  if (key.is_null()) return false;
  for (const auto& [name, table] : tables_) {
    for (const ForeignKey& fk : table->schema().foreign_keys()) {
      if (fk.ref_table != parent_table || fk.ref_column != parent_column) {
        continue;
      }
      const auto col = table->schema().FindColumn(fk.column);
      for (const Row& row : table->rows()) {
        if (row[*col] == key) return true;
      }
    }
  }
  return false;
}

Status Database::Insert(const std::string& table_name, Row row) {
  Table* table = FindTable(table_name);
  if (table == nullptr) return NotFoundError("no table '" + table_name + "'");
  if (row.size() != table->schema().column_count()) {
    return InvalidArgumentError(
        StrFormat("row arity %zu does not match table '%s' with %zu columns",
                  row.size(), table_name.c_str(),
                  table->schema().column_count()));
  }
  RETURN_IF_ERROR(CheckForeignKeysForRow(*table, row));
  RETURN_IF_ERROR(table->Insert(std::move(row)));
  MarkDirty(table_name);
  // Log the stored row (after INTEGER->REAL widening), not the input.
  return LogRecord(
      wal::EncodeInsertRecord(table_name, table->rows().back()));
}

Result<std::size_t> Database::Update(
    const std::string& table_name,
    const std::function<bool(const Row&)>& predicate,
    const std::vector<ColumnUpdate>& updates) {
  Table* table = FindTable(table_name);
  if (table == nullptr) return NotFoundError("no table '" + table_name + "'");
  const TableSchema& schema = table->schema();

  // RESTRICT on parent-key changes: if an updated column is referenced by
  // some child FK and a matched row actually holds a referenced key, the
  // update is refused (changing it would orphan children).
  for (const ColumnUpdate& update : updates) {
    if (update.column >= schema.column_count()) {
      return InvalidArgumentError("column index out of range in UPDATE");
    }
    const std::string& column_name = schema.columns()[update.column].name;
    for (const std::size_t i : table->FindRows(predicate)) {
      const Value& old_value = table->row(i)[update.column];
      if (old_value == update.value) continue;
      if (HasReferencingChild(table_name, column_name, old_value)) {
        return ConstraintViolationError(
            "cannot update '" + table_name + "." + column_name + "' = " +
            old_value.ToDisplayString() + ": referenced by child rows");
      }
    }
  }
  // Child-side FK check: new FK values must have parents.
  for (const ForeignKey& fk : schema.foreign_keys()) {
    const auto col = schema.FindColumn(fk.column);
    for (const ColumnUpdate& update : updates) {
      if (update.column != *col || update.value.is_null()) continue;
      const Table* parent = FindTable(fk.ref_table);
      const auto ref_col = parent->schema().FindColumn(fk.ref_column);
      if (!parent->ContainsValue(*ref_col, update.value)) {
        return ConstraintViolationError(
            "foreign key violated by UPDATE: " + table_name + "." +
            fk.column + " = " + update.value.ToDisplayString() +
            " has no parent in " + fk.ref_table);
      }
    }
  }
  std::vector<std::pair<std::uint64_t, Row>> applied;
  ASSIGN_OR_RETURN(std::size_t count,
                   table->Update(predicate, updates, &applied));
  if (count != 0) {
    MarkDirty(table_name);
    RETURN_IF_ERROR(LogRecord(wal::EncodeUpdateRecord(table_name, applied)));
  }
  return count;
}

Result<std::size_t> Database::Delete(
    const std::string& table_name,
    const std::function<bool(const Row&)>& predicate) {
  Table* table = FindTable(table_name);
  if (table == nullptr) return NotFoundError("no table '" + table_name + "'");
  const TableSchema& schema = table->schema();

  // RESTRICT: refuse if any to-be-deleted row is referenced by a child
  // row that itself survives the delete (self-referencing tables may
  // delete whole subtrees in one call).
  const std::vector<std::size_t> doomed = table->FindRows(predicate);
  if (doomed.empty()) return std::size_t{0};
  for (const auto& [child_name, child] : tables_) {
    for (const ForeignKey& fk : child->schema().foreign_keys()) {
      if (fk.ref_table != schema.table_name()) continue;
      const auto ref_col = schema.FindColumn(fk.ref_column);
      const auto child_col = child->schema().FindColumn(fk.column);
      for (std::size_t ci = 0; ci < child->row_count(); ++ci) {
        const Row& child_row = child->row(ci);
        const Value& fk_value = child_row[*child_col];
        if (fk_value.is_null()) continue;
        // Does the child row itself die in this delete?
        if (child_name == schema.table_name() && predicate(child_row)) {
          continue;
        }
        for (const std::size_t di : doomed) {
          if (table->row(di)[*ref_col] == fk_value) {
            return ConstraintViolationError(
                "cannot delete from '" + schema.table_name() +
                "': row with " + fk.ref_column + " = " +
                fk_value.ToDisplayString() + " is referenced by '" +
                child_name + "." + fk.column + "'");
          }
        }
      }
    }
  }
  std::vector<std::uint64_t> deleted;
  const std::size_t count = table->Delete(predicate, &deleted);
  if (count != 0) {
    MarkDirty(table_name);
    RETURN_IF_ERROR(LogRecord(wal::EncodeDeleteRecord(table_name, deleted)));
  }
  return count;
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

std::string SerializeSchema(const TableSchema& schema) {
  std::string out = "table " + EscapeTsvField(schema.table_name()) + "\n";
  for (const Column& column : schema.columns()) {
    out += "column\t" + EscapeTsvField(column.name) + "\t" +
           ColumnTypeName(column.type) + "\t" +
           (column.primary_key
                ? "pk"
                : (column.unique ? "unique"
                                 : (column.indexed ? "idx" : "-"))) +
           "\t" + (column.not_null ? "notnull" : "-") + "\n";
  }
  for (const ForeignKey& fk : schema.foreign_keys()) {
    out += "fk\t" + EscapeTsvField(fk.column) + "\t" +
           EscapeTsvField(fk.ref_table) + "\t" +
           EscapeTsvField(fk.ref_column) + "\n";
  }
  return out;
}

Result<TableSchema> ParseSchemaText(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  TableSchema schema;
  bool have_name = false;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (StartsWith(line, "table ")) {
      const auto name = UnescapeTsvField(line.substr(6));
      if (!name) return ParseError("bad table name line");
      schema = TableSchema(*name);
      have_name = true;
      continue;
    }
    const std::vector<std::string> fields = SplitString(line, '\t');
    if (!have_name) return ParseError("schema file must start with 'table'");
    if (fields[0] == "column") {
      if (fields.size() != 5) return ParseError("bad column line: " + line);
      const auto name = UnescapeTsvField(fields[1]);
      const auto type = ColumnTypeFromName(fields[2]);
      if (!name || !type) return ParseError("bad column line: " + line);
      Column column;
      column.name = *name;
      column.type = *type;
      column.primary_key = fields[3] == "pk";
      column.unique = column.primary_key || fields[3] == "unique";
      column.indexed = fields[3] == "idx";
      column.not_null = column.primary_key || fields[4] == "notnull";
      RETURN_IF_ERROR(schema.AddColumn(std::move(column)));
    } else if (fields[0] == "fk") {
      if (fields.size() != 4) return ParseError("bad fk line: " + line);
      const auto col = UnescapeTsvField(fields[1]);
      const auto ref_table = UnescapeTsvField(fields[2]);
      const auto ref_col = UnescapeTsvField(fields[3]);
      if (!col || !ref_table || !ref_col) {
        return ParseError("bad fk line: " + line);
      }
      RETURN_IF_ERROR(schema.AddForeignKey({*col, *ref_table, *ref_col}));
    } else {
      return ParseError("unknown schema line: " + line);
    }
  }
  if (!have_name) return ParseError("empty schema file");
  return schema;
}

Result<std::vector<std::string>> TablesInDependencyOrder(
    const Database& database) {
  // Manifests list tables in creation-compatible (FK-respecting) order.
  // std::map iteration is alphabetical, which may put children before
  // parents, so order by dependency here.
  std::vector<std::string> ordered;
  std::vector<std::string> remaining = database.TableNames();
  while (!remaining.empty()) {
    bool progressed = false;
    for (auto it = remaining.begin(); it != remaining.end();) {
      const Table* table = database.FindTable(*it);
      bool deps_met = true;
      for (const ForeignKey& fk : table->schema().foreign_keys()) {
        if (fk.ref_table == *it) continue;  // self
        if (std::find(ordered.begin(), ordered.end(), fk.ref_table) ==
            ordered.end()) {
          deps_met = false;
          break;
        }
      }
      if (deps_met) {
        ordered.push_back(*it);
        it = remaining.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
    if (!progressed) {
      return InternalError("foreign key cycle between tables");
    }
  }
  return ordered;
}

namespace {

// Write the legacy text format into `path` (which must already exist).
Status WriteTextFormat(const Database& database, const fs::path& path,
                       const std::vector<std::string>& ordered) {
  std::ofstream manifest(path / "manifest.txt", std::ios::trunc);
  if (!manifest) return IoError("cannot write manifest");
  for (const std::string& name : ordered) manifest << name << "\n";
  manifest.close();

  for (const std::string& name : ordered) {
    const Table* table = database.FindTable(name);
    std::ofstream schema_file(path / (name + ".schema"), std::ios::trunc);
    if (!schema_file) return IoError("cannot write schema for '" + name + "'");
    schema_file << SerializeSchema(table->schema());
    schema_file.close();

    std::ofstream data_file(path / (name + ".rows"), std::ios::trunc);
    if (!data_file) return IoError("cannot write rows for '" + name + "'");
    for (const Row& row : table->rows()) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i != 0) data_file << '\t';
        data_file << EscapeTsvField(row[i].Encode());
      }
      data_file << '\n';
    }
  }
  return Status::Ok();
}

}  // namespace

Status Database::SaveToDirectory(const std::string& path) const {
  ASSIGN_OR_RETURN(std::vector<std::string> ordered,
                   TablesInDependencyOrder(*this));

  // Write into a sibling temp directory, then swap it into place, so a
  // crash mid-save leaves either the old or the new database — never a
  // half-written mix (the non-atomicity the WAL's crash harness would
  // otherwise flag in its own fallback path).
  const fs::path target(path);
  const fs::path temp(path + ".saving");
  const fs::path stale(path + ".stale");
  std::error_code ec;
  fs::remove_all(temp, ec);
  fs::remove_all(stale, ec);
  fs::create_directories(temp, ec);
  if (ec) return IoError("cannot create directory '" + temp.string() + "'");
  RETURN_IF_ERROR(WriteTextFormat(*this, temp, ordered));

  if (fs::exists(target)) {
    fs::rename(target, stale, ec);
    if (ec) return IoError("cannot move aside '" + path + "'");
  }
  fs::rename(temp, target, ec);
  if (ec) return IoError("cannot move saved database into '" + path + "'");
  fs::remove_all(stale, ec);  // best-effort cleanup
  return Status::Ok();
}

Result<Database> Database::LoadFromDirectory(const std::string& path) {
  // Finish an interrupted atomic save: if the target vanished between
  // SaveToDirectory's two renames, the sibling ".saving" directory holds
  // a complete database (it is fully written before the swap begins).
  if (!fs::exists(fs::path(path) / "manifest.txt") &&
      fs::exists(fs::path(path + ".saving") / "manifest.txt") &&
      !fs::exists(path)) {
    std::error_code ec;
    fs::rename(path + ".saving", path, ec);
    if (ec) return IoError("cannot recover interrupted save of '" +
                           path + "'");
  }
  std::ifstream manifest(fs::path(path) / "manifest.txt");
  if (!manifest) return IoError("cannot open manifest in '" + path + "'");
  Database database;
  std::string name;
  std::vector<std::string> names;
  while (std::getline(manifest, name)) {
    if (!name.empty()) names.push_back(name);
  }
  for (const std::string& table_name : names) {
    std::ifstream schema_file(fs::path(path) / (table_name + ".schema"));
    if (!schema_file) {
      return IoError("missing schema file for '" + table_name + "'");
    }
    std::ostringstream schema_text;
    schema_text << schema_file.rdbuf();
    ASSIGN_OR_RETURN(TableSchema schema, ParseSchemaText(schema_text.str()));
    RETURN_IF_ERROR(database.CreateTable(std::move(schema)));

    std::ifstream data_file(fs::path(path) / (table_name + ".rows"));
    if (!data_file) {
      return IoError("missing rows file for '" + table_name + "'");
    }
    std::string line;
    std::size_t line_number = 0;
    // Self-referencing tables may list a child before its parent; defer
    // FK-failing rows and retry until a fixed point.
    std::vector<Row> deferred;
    while (std::getline(data_file, line)) {
      ++line_number;
      if (line.empty()) continue;
      Row row;
      for (const std::string& field : SplitString(line, '\t')) {
        const auto raw = UnescapeTsvField(field);
        if (!raw) {
          return ParseError(StrFormat("%s.rows line %zu: bad escape",
                                      table_name.c_str(), line_number));
        }
        ASSIGN_OR_RETURN(Value value, Value::Decode(*raw));
        row.push_back(std::move(value));
      }
      Status st = database.Insert(table_name, row);
      if (!st.ok() && st.code() == ErrorCode::kConstraintViolation) {
        deferred.push_back(std::move(row));
      } else if (!st.ok()) {
        return st;
      }
    }
    while (!deferred.empty()) {
      bool progressed = false;
      std::vector<Row> still_deferred;
      for (Row& row : deferred) {
        Status st = database.Insert(table_name, row);
        if (st.ok()) {
          progressed = true;
        } else if (st.code() == ErrorCode::kConstraintViolation) {
          still_deferred.push_back(std::move(row));
        } else {
          return st;
        }
      }
      if (!progressed) {
        return DataLossError("unresolvable foreign keys while loading '" +
                             table_name + "'");
      }
      deferred = std::move(still_deferred);
    }
  }
  return database;
}

// ---------------------------------------------------------------------------
// WAL persistence
// ---------------------------------------------------------------------------

namespace {

std::string SnapshotFileName(const std::string& table,
                             std::uint64_t generation) {
  return table + "." + std::to_string(generation) + ".snap";
}

// Remove *.snap files that are not in `keep` (stale generations left by
// an interrupted compaction). Best-effort: failures are ignored.
void RemoveStaleSnapshots(const fs::path& dir,
                          const std::vector<std::string>& keep) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!EndsWith(name, ".snap")) continue;
    if (std::find(keep.begin(), keep.end(), name) != keep.end()) continue;
    std::error_code remove_ec;
    fs::remove(entry.path(), remove_ec);
  }
}

}  // namespace

Status Database::LogRecord(const std::string& payload) {
  if (wal_file_ == nullptr || replaying_) return Status::Ok();
  pending_ += wal::FrameRecord(payload);
  ++pending_records_;
  return Status::Ok();
}

Status Database::ReplayRecord(const wal::WalRecord& record) {
  switch (record.type) {
    case wal::RecordType::kSchema: {
      ASSIGN_OR_RETURN(TableSchema schema,
                       ParseSchemaText(record.schema_text));
      return CreateTable(std::move(schema));
    }
    case wal::RecordType::kInsert: {
      Table* table = FindTable(record.table);
      if (table == nullptr) {
        return DataLossError("insert replay into missing table '" +
                             record.table + "'");
      }
      // FK checks are skipped: the record was FK-validated before it was
      // logged, and replay preserves the original mutation order.
      MarkDirty(record.table);
      return table->Insert(record.row);
    }
    case wal::RecordType::kUpdate: {
      Table* table = FindTable(record.table);
      if (table == nullptr) {
        return DataLossError("update replay into missing table '" +
                             record.table + "'");
      }
      MarkDirty(record.table);
      return table->ApplyUpdateBatch(record.updates);
    }
    case wal::RecordType::kDelete: {
      Table* table = FindTable(record.table);
      if (table == nullptr) {
        return DataLossError("delete replay into missing table '" +
                             record.table + "'");
      }
      MarkDirty(record.table);
      return table->ApplyDeleteBatch(record.deletes);
    }
    case wal::RecordType::kDropTable:
      if (tables_.erase(record.table) == 0) {
        return DataLossError("drop replay of missing table '" +
                             record.table + "'");
      }
      dirty_tables_.erase(record.table);
      table_snapshot_gen_.erase(record.table);
      return Status::Ok();
    case wal::RecordType::kCommit:
      // ReadWal folds commit markers into bookkeeping; none reach here.
      return Status::Ok();
  }
  return InternalError("unhandled record type in replay");
}

Status Database::WriteSnapshots(std::uint64_t generation) const {
  ASSIGN_OR_RETURN(std::vector<std::string> ordered,
                   TablesInDependencyOrder(*this));
  for (const std::string& name : ordered) {
    const Table* table = FindTable(name);
    const std::string bytes = wal::EncodeTableSnapshot(
        SerializeSchema(table->schema()), table->rows());
    RETURN_IF_ERROR(wal::WriteFileAtomic(
        (fs::path(wal_dir_) / SnapshotFileName(name, generation)).string(),
        bytes));
  }
  return Status::Ok();
}

Status Database::AttachWal(const std::string& path,
                           wal::WalFileFactory factory) {
  if (wal_attached()) {
    return FailedPreconditionError("a WAL is already attached");
  }
  const fs::path dir(path);
  if (fs::exists(dir / "wal.log") || fs::exists(dir / "snapshot.manifest")) {
    return AlreadyExistsError("'" + path +
                              "' already holds a WAL database; use Open");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return IoError("cannot create directory '" + path + "'");

  wal_dir_ = path;
  wal_factory_ = factory ? std::move(factory) : wal::OpenLogFile;
  generation_ = 0;
  commit_sequence_ = 0;
  pending_.clear();
  pending_records_ = 0;

  // Current in-memory state becomes the generation-0 snapshot; the log
  // starts empty. Order matters: snapshots, then the manifest naming
  // them, then the log — the same publish order compaction uses.
  RETURN_IF_ERROR(WriteSnapshots(0));
  ASSIGN_OR_RETURN(std::vector<std::string> ordered,
                   TablesInDependencyOrder(*this));
  RETURN_IF_ERROR(wal::WriteFileAtomic(
      (dir / "snapshot.manifest").string(), wal::EncodeManifest(0, ordered)));
  RETURN_IF_ERROR(wal::WriteFileAtomic((dir / "wal.log").string(),
                                       wal::EncodeWalHeader(0)));
  log_bytes_ = wal::kWalHeaderSize;
  dirty_tables_.clear();
  table_snapshot_gen_.clear();
  for (const std::string& name : ordered) table_snapshot_gen_[name] = 0;
  ASSIGN_OR_RETURN(wal_file_, wal_factory_((dir / "wal.log").string()));
  return Status::Ok();
}

Status Database::OpenWalInto(const std::string& path,
                             wal::WalFileFactory factory) {
  const fs::path dir(path);
  wal_dir_ = path;
  wal_factory_ = factory ? std::move(factory) : wal::OpenLogFile;

  ASSIGN_OR_RETURN(std::string manifest_text,
                   wal::ReadFileBytes((dir / "snapshot.manifest").string()));
  ASSIGN_OR_RETURN(wal::DecodedManifest manifest,
                   wal::DecodeManifest(manifest_text));

  const std::string log_path = (dir / "wal.log").string();
  auto log_bytes = wal::ReadFileBytes(log_path);
  const wal::WalReadResult log =
      wal::ReadWal(log_bytes.ok() ? *log_bytes : std::string());

  // The manifest generation decides what is live. A log of the same
  // generation replays on top of the snapshots; anything else (missing
  // log, torn header, or the previous generation left by a compaction
  // crash between the manifest and log renames) means the snapshots
  // alone are the committed state and the log restarts empty.
  const bool replay_log = log.header_valid &&
                          log.generation == manifest.generation;

  replaying_ = true;
  for (std::size_t i = 0; i < manifest.tables.size(); ++i) {
    const std::string& name = manifest.tables[i];
    const std::uint64_t snap_generation = manifest.table_generations[i];
    auto snap_bytes = wal::ReadFileBytes(
        (dir / SnapshotFileName(name, snap_generation)).string());
    if (!snap_bytes.ok()) {
      replaying_ = false;
      return DataLossError("missing snapshot for table '" + name +
                           "' generation " +
                           std::to_string(snap_generation));
    }
    auto snapshot = wal::DecodeTableSnapshot(*snap_bytes);
    if (!snapshot.ok()) {
      replaying_ = false;
      return snapshot.status();
    }
    auto schema = ParseSchemaText(snapshot->schema_text);
    if (!schema.ok()) {
      replaying_ = false;
      return schema.status();
    }
    Status created = CreateTable(std::move(*schema));
    if (!created.ok()) {
      replaying_ = false;
      return created;
    }
    Table* table = FindTable(name);
    for (const Row& row : snapshot->rows) {
      Status inserted = table->Insert(row);
      if (!inserted.ok()) {
        replaying_ = false;
        return inserted;
      }
    }
  }
  // Snapshots just loaded are clean by definition; replayed log records
  // below re-dirty exactly the tables they touch.
  dirty_tables_.clear();
  table_snapshot_gen_.clear();
  for (std::size_t i = 0; i < manifest.tables.size(); ++i) {
    table_snapshot_gen_[manifest.tables[i]] = manifest.table_generations[i];
  }
  if (replay_log) {
    for (const wal::WalRecord& record : log.committed) {
      Status replayed = ReplayRecord(record);
      if (!replayed.ok()) {
        replaying_ = false;
        return replayed;
      }
    }
  }
  replaying_ = false;

  generation_ = manifest.generation;
  if (replay_log) {
    commit_sequence_ = log.last_commit_sequence;
    // Drop the torn/uncommitted tail so the writer appends after the
    // last commit marker.
    if (log.total_bytes > log.committed_bytes) {
      std::error_code ec;
      fs::resize_file(log_path, log.committed_bytes, ec);
      if (ec) return IoError("cannot truncate torn tail of wal.log");
    }
    log_bytes_ = log.committed_bytes;
  } else {
    commit_sequence_ = 0;
    RETURN_IF_ERROR(wal::WriteFileAtomic(
        log_path, wal::EncodeWalHeader(manifest.generation)));
    log_bytes_ = wal::kWalHeaderSize;
  }

  std::vector<std::string> keep;
  for (std::size_t i = 0; i < manifest.tables.size(); ++i) {
    keep.push_back(
        SnapshotFileName(manifest.tables[i], manifest.table_generations[i]));
  }
  RemoveStaleSnapshots(dir, keep);

  ASSIGN_OR_RETURN(wal_file_, wal_factory_(log_path));
  return Status::Ok();
}

Result<Database> Database::Open(const std::string& path,
                                wal::WalFileFactory factory) {
  const fs::path dir(path);
  if (fs::exists(dir / "wal.log") || fs::exists(dir / "snapshot.manifest")) {
    Database database;
    RETURN_IF_ERROR(database.OpenWalInto(path, std::move(factory)));
    return database;
  }
  return LoadFromDirectory(path);
}

Status Database::Commit() {
  if (!wal_attached()) {
    return FailedPreconditionError("Commit() without an attached WAL");
  }
  if (pending_records_ == 0) return Status::Ok();  // empty commits skipped
  pending_ +=
      wal::FrameRecord(wal::EncodeCommitRecord(commit_sequence_ + 1));
  // One append for the whole batch + marker: a crash can tear the tail
  // of this write but never interleave another writer's bytes.
  RETURN_IF_ERROR(wal_file_->Append(pending_));
  RETURN_IF_ERROR(wal_file_->Sync());
  ++commit_sequence_;
  log_bytes_ += pending_.size();
  pending_.clear();
  pending_records_ = 0;
  if (compaction_threshold_ != 0 && log_bytes_ >= compaction_threshold_) {
    return Compact();
  }
  return Status::Ok();
}

Status Database::Compact() {
  if (!wal_attached()) {
    return FailedPreconditionError("Compact() without an attached WAL");
  }
  if (pending_records_ != 0) {
    // Flush the batch (without re-entering compaction) so the snapshot
    // includes it.
    const std::uint64_t threshold = compaction_threshold_;
    compaction_threshold_ = 0;
    Status committed = Commit();
    compaction_threshold_ = threshold;
    RETURN_IF_ERROR(committed);
  }
  const std::uint64_t new_generation = generation_ + 1;
  ASSIGN_OR_RETURN(std::vector<std::string> ordered,
                   TablesInDependencyOrder(*this));
  // Incremental: rewrite only tables mutated since their last snapshot.
  // A clean table's manifest entry keeps pointing at its existing file,
  // so a compaction of the submission journal (one hot queue table among
  // static ones) costs one small snapshot, not a full rewrite. A table
  // with no snapshot file yet always counts as dirty.
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  entries.reserve(ordered.size());
  for (const std::string& name : ordered) {
    const auto current = table_snapshot_gen_.find(name);
    if (dirty_tables_.count(name) == 0 &&
        current != table_snapshot_gen_.end()) {
      entries.emplace_back(name, current->second);
      continue;
    }
    const Table* table = FindTable(name);
    RETURN_IF_ERROR(wal::WriteFileAtomic(
        (fs::path(wal_dir_) / SnapshotFileName(name, new_generation))
            .string(),
        wal::EncodeTableSnapshot(SerializeSchema(table->schema()),
                                 table->rows())));
    entries.emplace_back(name, new_generation);
  }
  // The manifest rename is the commit point: before it, recovery replays
  // the old log onto the old snapshots; after it, the new snapshots are
  // the state and any same-named old log is ignored (generation skew).
  RETURN_IF_ERROR(wal::WriteFileAtomic(
      (fs::path(wal_dir_) / "snapshot.manifest").string(),
      wal::EncodeManifest(new_generation, entries)));
  wal_file_.reset();  // close before replacing the inode
  RETURN_IF_ERROR(
      wal::WriteFileAtomic((fs::path(wal_dir_) / "wal.log").string(),
                           wal::EncodeWalHeader(new_generation)));
  generation_ = new_generation;
  commit_sequence_ = 0;
  log_bytes_ = wal::kWalHeaderSize;
  dirty_tables_.clear();
  table_snapshot_gen_.clear();
  std::vector<std::string> keep;
  for (const auto& [name, snap_generation] : entries) {
    table_snapshot_gen_[name] = snap_generation;
    keep.push_back(SnapshotFileName(name, snap_generation));
  }
  RemoveStaleSnapshots(wal_dir_, keep);
  ASSIGN_OR_RETURN(wal_file_,
                   wal_factory_((fs::path(wal_dir_) / "wal.log").string()));
  return Status::Ok();
}

Status Database::Persist(const std::string& path) {
  if (wal_attached()) {
    std::error_code ec;
    if (path == wal_dir_ ||
        fs::weakly_canonical(path, ec) == fs::weakly_canonical(wal_dir_, ec)) {
      return Commit();
    }
  }
  return SaveToDirectory(path);
}

}  // namespace goofi::db
