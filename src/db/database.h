// The database: a set of tables plus cross-table referential integrity.
//
// Foreign keys are enforced RESTRICT-style, matching the paper's use of
// them to "prevent inconsistencies in the database": a child row cannot
// be inserted without its parent, and a parent row cannot be deleted,
// re-keyed, or its table dropped while children reference it.
//
// Persistence comes in two formats:
//   * WAL (default for new campaign databases): checkpointed binary
//     table snapshots plus an append-only, CRC-checksummed log. Every
//     FK-checked mutation is buffered; Commit() group-flushes the batch
//     behind a commit marker, so recovery after a crash replays exactly
//     the committed prefix and never a partial batch. The log compacts
//     into fresh snapshots once it crosses a size threshold. See wal.h.
//   * Legacy text (one schema file + one TSV data file per table), kept
//     readable so existing campaign directories still load; saves swap
//     a temp directory into place so a crash mid-save cannot destroy
//     the previous database.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "db/table.h"
#include "db/wal.h"
#include "util/status.h"

namespace goofi::db {

class Database {
 public:
  Database() = default;
  // Tables hold interior pointers into the map; keep databases pinned.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // Create a table. Validates that every foreign key references an
  // existing table and a PRIMARY KEY / UNIQUE column of compatible type.
  Status CreateTable(TableSchema schema);

  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // FK-checked mutations (the only mutation doors callers should use).
  Status Insert(const std::string& table, Row row);
  Result<std::size_t> Update(const std::string& table,
                             const std::function<bool(const Row&)>& predicate,
                             const std::vector<ColumnUpdate>& updates);
  Result<std::size_t> Delete(
      const std::string& table,
      const std::function<bool(const Row&)>& predicate);

  // Persistence (legacy text format). SaveToDirectory writes a sibling
  // temp directory and atomically swaps it into place; LoadFromDirectory
  // returns a fresh database.
  Status SaveToDirectory(const std::string& path) const;
  static Result<Database> LoadFromDirectory(const std::string& path);

  // ---- WAL persistence ---------------------------------------------------

  // Open a database directory of either format. A directory holding
  // wal.log / snapshot.manifest recovers WAL state (replaying to the
  // last valid commit, truncating any torn tail) and attaches the log
  // for writing; a legacy manifest.txt directory loads read-only-style
  // (no log attached; use AttachWal to migrate). `factory` overrides how
  // the log file is opened — the crash tests inject faulty files here.
  static Result<Database> Open(const std::string& path,
                               wal::WalFileFactory factory = nullptr);

  // Attach a WAL to `path` (creating the directory), snapshotting the
  // current in-memory state as generation 0. This is both "create a new
  // WAL database" and "migrate a legacy text database".
  Status AttachWal(const std::string& path,
                   wal::WalFileFactory factory = nullptr);

  bool wal_attached() const { return wal_file_ != nullptr; }
  const std::string& wal_path() const { return wal_dir_; }

  // Group commit: flush the buffered mutation batch plus a commit marker
  // in one append, then sync. No-op when nothing is pending. Triggers
  // compaction when the log has crossed the size threshold.
  Status Commit();

  // Fold the log into fresh table snapshots under a bumped generation
  // and restart an empty log. Commits any pending batch first.
  // Incremental: only tables mutated since their last snapshot are
  // rewritten; a clean table's manifest entry keeps pointing at its
  // existing snapshot file (manifest v2, see wal.h).
  Status Compact();

  // Routing door for runner checkpoints: Commit() when the WAL is
  // attached to exactly `path`, otherwise a legacy atomic text save.
  Status Persist(const std::string& path);

  // Uncommitted records buffered since the last commit.
  std::uint64_t pending_record_count() const { return pending_records_; }
  std::uint64_t commit_sequence() const { return commit_sequence_; }
  std::uint64_t generation() const { return generation_; }
  // Generation in `table`'s current snapshot file name (0 if never
  // snapshotted). Lags generation() for tables untouched since their
  // last rewrite — how tests observe that compaction skipped a table.
  std::uint64_t table_snapshot_generation(const std::string& table) const {
    const auto it = table_snapshot_gen_.find(table);
    return it == table_snapshot_gen_.end() ? 0 : it->second;
  }
  bool table_dirty(const std::string& table) const {
    return dirty_tables_.count(table) != 0;
  }
  // Log size (bytes) that triggers compaction at the next commit.
  // 0 disables automatic compaction. Deterministic across serial and
  // parallel runs because the log bytes themselves are deterministic.
  void set_compaction_threshold(std::uint64_t bytes) {
    compaction_threshold_ = bytes;
  }

 private:
  Status LogRecord(const std::string& payload);
  Status ReplayRecord(const wal::WalRecord& record);
  // A mutated table needs a fresh snapshot at the next compaction.
  void MarkDirty(const std::string& table) { dirty_tables_.insert(table); }
  Status WriteSnapshots(std::uint64_t generation) const;
  Status OpenWalInto(const std::string& path, wal::WalFileFactory factory);
  Status CheckForeignKeysForRow(const Table& table, const Row& row) const;
  // Is `key` in `parent_table.parent_column` referenced by any child row?
  bool HasReferencingChild(const std::string& parent_table,
                           const std::string& parent_column,
                           const Value& key) const;

  std::map<std::string, std::unique_ptr<Table>> tables_;

  // WAL state (empty / null when no log is attached).
  std::string wal_dir_;
  std::unique_ptr<wal::WalFile> wal_file_;
  wal::WalFileFactory wal_factory_;
  std::string pending_;                 // framed records awaiting commit
  std::uint64_t pending_records_ = 0;
  std::uint64_t commit_sequence_ = 0;   // last flushed commit marker
  std::uint64_t generation_ = 0;        // snapshot generation
  std::uint64_t log_bytes_ = 0;         // committed log size on disk
  std::uint64_t compaction_threshold_ = 8 * 1024 * 1024;
  bool replaying_ = false;              // suppress logging during replay
  // Incremental-compaction bookkeeping: which tables changed since their
  // last snapshot, and the generation each table's snapshot file carries.
  std::set<std::string> dirty_tables_;
  std::map<std::string, std::uint64_t> table_snapshot_gen_;
};

// Table names in FK-dependency order (parents before children); fails
// on a cycle. Both persistence formats write tables in this order.
Result<std::vector<std::string>> TablesInDependencyOrder(
    const Database& database);

// Serialize one schema to the text form used by persistence (also handy
// for debugging and golden tests).
std::string SerializeSchema(const TableSchema& schema);
Result<TableSchema> ParseSchemaText(const std::string& text);

}  // namespace goofi::db
