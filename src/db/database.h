// The database: a set of tables plus cross-table referential integrity.
//
// Foreign keys are enforced RESTRICT-style, matching the paper's use of
// them to "prevent inconsistencies in the database": a child row cannot
// be inserted without its parent, and a parent row cannot be deleted,
// re-keyed, or its table dropped while children reference it.
//
// Persistence is a directory of portable text files (one schema file +
// one TSV data file per table), so a campaign database moves between
// hosts the way the paper's SQL database does.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/table.h"
#include "util/status.h"

namespace goofi::db {

class Database {
 public:
  Database() = default;
  // Tables hold interior pointers into the map; keep databases pinned.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // Create a table. Validates that every foreign key references an
  // existing table and a PRIMARY KEY / UNIQUE column of compatible type.
  Status CreateTable(TableSchema schema);

  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // FK-checked mutations (the only mutation doors callers should use).
  Status Insert(const std::string& table, Row row);
  Result<std::size_t> Update(const std::string& table,
                             const std::function<bool(const Row&)>& predicate,
                             const std::vector<ColumnUpdate>& updates);
  Result<std::size_t> Delete(
      const std::string& table,
      const std::function<bool(const Row&)>& predicate);

  // Persistence. SaveToDirectory creates the directory if needed and
  // replaces its contents; LoadFromDirectory returns a fresh database.
  Status SaveToDirectory(const std::string& path) const;
  static Result<Database> LoadFromDirectory(const std::string& path);

 private:
  Status CheckForeignKeysForRow(const Table& table, const Row& row) const;
  // Is `key` in `parent_table.parent_column` referenced by any child row?
  bool HasReferencingChild(const std::string& parent_table,
                           const std::string& parent_column,
                           const Value& key) const;

  std::map<std::string, std::unique_ptr<Table>> tables_;
};

// Serialize one schema to the text form used by persistence (also handy
// for debugging and golden tests).
std::string SerializeSchema(const TableSchema& schema);
Result<TableSchema> ParseSchemaText(const std::string& text);

}  // namespace goofi::db
