// A single table: rows plus hash indexes over PRIMARY KEY / UNIQUE
// columns. Referential integrity across tables lives in Database.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/index.h"
#include "db/schema.h"
#include "util/status.h"

namespace goofi::db {

using Row = std::vector<Value>;

// One assignment of a SET clause / C++ update: column index -> new value.
struct ColumnUpdate {
  std::size_t column;
  Value value;
};

class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  std::size_t row_count() const { return rows_.size(); }
  const Row& row(std::size_t index) const { return rows_[index]; }
  const std::vector<Row>& rows() const { return rows_; }

  // Insert after schema + UNIQUE checks. FK checks are the Database's
  // job (it sees the other tables).
  Status Insert(Row row);

  // Index lookup on a UNIQUE / PRIMARY KEY column. NULL never matches.
  std::optional<std::size_t> FindByUnique(std::size_t column,
                                          const Value& key) const;

  // True iff `column` carries a secondary (INDEXED, non-unique) index.
  bool HasSecondaryIndex(std::size_t column) const;

  // Ascending row indices holding `key` in secondary-indexed `column`;
  // nullptr when the key is absent. Asserts if the column is not indexed.
  const std::vector<std::size_t>* FindBySecondary(std::size_t column,
                                                  const Value& key) const;

  // Linear scan returning indices of rows satisfying `predicate`.
  std::vector<std::size_t> FindRows(
      const std::function<bool(const Row&)>& predicate) const;

  // True iff some row has `key` in `column` (uses the index when one
  // exists). NULL never matches.
  bool ContainsValue(std::size_t column, const Value& key) const;

  // Apply `updates` to every row matching `predicate`. All-or-nothing:
  // on any constraint violation no row is changed. Returns the number
  // of rows updated. When `applied` is non-null it receives the
  // (row index, full post-update row) pairs, in ascending row order —
  // exactly the payload the write-ahead log records.
  Result<std::size_t> Update(
      const std::function<bool(const Row&)>& predicate,
      const std::vector<ColumnUpdate>& updates,
      std::vector<std::pair<std::uint64_t, Row>>* applied = nullptr);

  // Delete every row matching `predicate`; returns the number deleted.
  // When `deleted` is non-null it receives the ascending pre-delete row
  // indices (the WAL's delete payload).
  std::size_t Delete(const std::function<bool(const Row&)>& predicate,
                     std::vector<std::uint64_t>* deleted = nullptr);

  // WAL replay doors: re-apply logged mutations verbatim, bypassing
  // predicate evaluation (indices were recorded at write time). Both
  // rebuild the indexes; constraints were validated before logging.
  Status ApplyUpdateBatch(
      const std::vector<std::pair<std::uint64_t, Row>>& updates);
  Status ApplyDeleteBatch(const std::vector<std::uint64_t>& ascending);

  // Remove all rows.
  void Clear();

 private:
  void RebuildIndexes();
  // Indexed (unique) column positions in schema order.
  std::vector<std::size_t> unique_columns_;
  // Secondary (INDEXED, non-unique) column positions in schema order.
  std::vector<std::size_t> secondary_columns_;
  TableSchema schema_;
  std::vector<Row> rows_;
  // Per unique column: encoded value -> row index.
  std::vector<std::unordered_map<std::string, std::size_t>> indexes_;
  // Per secondary column: encoded value -> ascending row indices.
  std::vector<SecondaryIndex> secondary_indexes_;
};

}  // namespace goofi::db
