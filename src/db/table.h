// A single table: rows plus hash indexes over PRIMARY KEY / UNIQUE
// columns. Referential integrity across tables lives in Database.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/schema.h"
#include "util/status.h"

namespace goofi::db {

using Row = std::vector<Value>;

// One assignment of a SET clause / C++ update: column index -> new value.
struct ColumnUpdate {
  std::size_t column;
  Value value;
};

class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  std::size_t row_count() const { return rows_.size(); }
  const Row& row(std::size_t index) const { return rows_[index]; }
  const std::vector<Row>& rows() const { return rows_; }

  // Insert after schema + UNIQUE checks. FK checks are the Database's
  // job (it sees the other tables).
  Status Insert(Row row);

  // Index lookup on a UNIQUE / PRIMARY KEY column. NULL never matches.
  std::optional<std::size_t> FindByUnique(std::size_t column,
                                          const Value& key) const;

  // Linear scan returning indices of rows satisfying `predicate`.
  std::vector<std::size_t> FindRows(
      const std::function<bool(const Row&)>& predicate) const;

  // True iff some row has `key` in `column` (uses the index when one
  // exists). NULL never matches.
  bool ContainsValue(std::size_t column, const Value& key) const;

  // Apply `updates` to every row matching `predicate`. All-or-nothing:
  // on any constraint violation no row is changed. Returns the number
  // of rows updated.
  Result<std::size_t> Update(const std::function<bool(const Row&)>& predicate,
                             const std::vector<ColumnUpdate>& updates);

  // Delete every row matching `predicate`; returns the number deleted.
  std::size_t Delete(const std::function<bool(const Row&)>& predicate);

  // Remove all rows.
  void Clear();

 private:
  void RebuildIndexes();
  // Indexed (unique) column positions in schema order.
  std::vector<std::size_t> unique_columns_;
  TableSchema schema_;
  std::vector<Row> rows_;
  // Per unique column: encoded value -> row index.
  std::vector<std::unordered_map<std::string, std::size_t>> indexes_;
};

}  // namespace goofi::db
