#include "db/schema.h"

#include "util/strings.h"

namespace goofi::db {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInteger: return "INTEGER";
    case ColumnType::kReal: return "REAL";
    case ColumnType::kText: return "TEXT";
    case ColumnType::kBlob: return "BLOB";
    case ColumnType::kAny: return "ANY";
  }
  return "?";
}

std::optional<ColumnType> ColumnTypeFromName(const std::string& name) {
  const std::string upper = AsciiToUpper(name);
  if (upper == "INTEGER" || upper == "INT") return ColumnType::kInteger;
  if (upper == "REAL" || upper == "DOUBLE" || upper == "FLOAT") {
    return ColumnType::kReal;
  }
  if (upper == "TEXT" || upper == "VARCHAR" || upper == "STRING") {
    return ColumnType::kText;
  }
  if (upper == "BLOB") return ColumnType::kBlob;
  if (upper == "ANY") return ColumnType::kAny;
  return std::nullopt;
}

Status TableSchema::AddColumn(Column column) {
  if (column.name.empty()) {
    return InvalidArgumentError("column name must not be empty");
  }
  if (FindColumn(column.name)) {
    return AlreadyExistsError("duplicate column '" + column.name + "' in '" +
                              table_name_ + "'");
  }
  if (column.primary_key) {
    if (pk_index_) {
      return InvalidArgumentError("table '" + table_name_ +
                                  "' already has a primary key");
    }
    column.unique = true;
    column.not_null = true;
    pk_index_ = columns_.size();
  }
  columns_.push_back(std::move(column));
  return Status::Ok();
}

Status TableSchema::AddForeignKey(ForeignKey fk) {
  if (!FindColumn(fk.column)) {
    return InvalidArgumentError("foreign key column '" + fk.column +
                                "' not in table '" + table_name_ + "'");
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::Ok();
}

std::optional<std::size_t> TableSchema::FindColumn(
    const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Status TableSchema::CheckValue(std::size_t index, Value& value) const {
  const Column& column = columns_[index];
  if (value.is_null()) {
    if (column.not_null) {
      return ConstraintViolationError("NOT NULL violated for '" +
                                      table_name_ + "." + column.name + "'");
    }
    return Status::Ok();
  }
  switch (column.type) {
    case ColumnType::kAny:
      return Status::Ok();
    case ColumnType::kInteger:
      if (value.type() != ValueType::kInteger) break;
      return Status::Ok();
    case ColumnType::kReal:
      if (value.type() == ValueType::kInteger) {
        value = Value::Real(value.AsReal());  // widen
        return Status::Ok();
      }
      if (value.type() != ValueType::kReal) break;
      return Status::Ok();
    case ColumnType::kText:
      if (value.type() != ValueType::kText) break;
      return Status::Ok();
    case ColumnType::kBlob:
      if (value.type() != ValueType::kBlob) break;
      return Status::Ok();
  }
  return ConstraintViolationError(
      StrFormat("type mismatch for '%s.%s': column is %s, value is %s",
                table_name_.c_str(), column.name.c_str(),
                ColumnTypeName(column.type), ValueTypeName(value.type())));
}

Status TableSchema::CheckRow(std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return InvalidArgumentError(
        StrFormat("row arity %zu does not match table '%s' with %zu columns",
                  row.size(), table_name_.c_str(), columns_.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    RETURN_IF_ERROR(CheckValue(i, row[i]));
  }
  return Status::Ok();
}

}  // namespace goofi::db
