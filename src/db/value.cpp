#include "db/value.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "util/strings.h"

namespace goofi::db {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInteger: return "INTEGER";
    case ValueType::kReal: return "REAL";
    case ValueType::kText: return "TEXT";
    case ValueType::kBlob: return "BLOB";
  }
  return "?";
}

Value Value::Blob(std::string bytes) {
  Value v;
  v.data_ = BlobBytes{std::move(bytes)};
  return v;
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0: return ValueType::kNull;
    case 1: return ValueType::kInteger;
    case 2: return ValueType::kReal;
    case 3: return ValueType::kText;
    case 4: return ValueType::kBlob;
  }
  return ValueType::kNull;
}

std::int64_t Value::AsInteger() const {
  assert(type() == ValueType::kInteger);
  return std::get<std::int64_t>(data_);
}

double Value::AsReal() const {
  if (type() == ValueType::kInteger) {
    return static_cast<double>(std::get<std::int64_t>(data_));
  }
  assert(type() == ValueType::kReal);
  return std::get<double>(data_);
}

const std::string& Value::AsText() const {
  assert(type() == ValueType::kText);
  return std::get<Text>(data_).data;
}

const std::string& Value::AsBlob() const {
  assert(type() == ValueType::kBlob);
  return std::get<BlobBytes>(data_).data;
}

bool Value::Truthy() const {
  switch (type()) {
    case ValueType::kInteger: return AsInteger() != 0;
    case ValueType::kReal: return AsReal() != 0.0;
    default: return false;
  }
}

int Value::Compare(const Value& other) const {
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull: return 0;
      case ValueType::kInteger:
      case ValueType::kReal: return 1;
      case ValueType::kText: return 2;
      case ValueType::kBlob: return 3;
    }
    return 4;
  };
  const int my_rank = rank(type());
  const int other_rank = rank(other.type());
  if (my_rank != other_rank) return my_rank < other_rank ? -1 : 1;
  switch (my_rank) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes
    case 1: {
      // Compare INTEGER/REAL numerically. Pure-integer compares avoid the
      // double round trip so 64-bit keys stay exact.
      if (type() == ValueType::kInteger &&
          other.type() == ValueType::kInteger) {
        const std::int64_t a = AsInteger();
        const std::int64_t b = other.AsInteger();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      const double a = AsReal();
      const double b = other.AsReal();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    case 2: {
      const int c = AsText().compare(other.AsText());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default: {
      const int c = AsBlob().compare(other.AsBlob());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInteger: return std::to_string(AsInteger());
    case ValueType::kReal: {
      std::string s = StrFormat("%.17g", AsReal());
      return s;
    }
    case ValueType::kText: {
      std::string out = "'";
      for (char c : AsText()) {
        if (c == '\'') out += "''";
        else out.push_back(c);
      }
      out += "'";
      return out;
    }
    case ValueType::kBlob: return "x'" + HexEncode(AsBlob()) + "'";
  }
  return "?";
}

std::string Value::Encode() const {
  switch (type()) {
    case ValueType::kNull: return "n";
    case ValueType::kInteger: return "i" + std::to_string(AsInteger());
    case ValueType::kReal: {
      // Bit-exact round trip via the IEEE-754 image.
      std::uint64_t bits;
      const double d = AsReal();
      std::memcpy(&bits, &d, sizeof bits);
      return "r" + StrFormat("%016llx", static_cast<unsigned long long>(bits));
    }
    case ValueType::kText: return "t" + AsText();
    case ValueType::kBlob: return "b" + AsBlob();
  }
  return "n";
}

Result<Value> Value::Decode(const std::string& encoded) {
  if (encoded.empty()) return ParseError("empty encoded value");
  const std::string body = encoded.substr(1);
  switch (encoded[0]) {
    case 'n':
      return Value::Null();
    case 'i': {
      const auto parsed = ParseInt64(body);
      if (!parsed) return ParseError("bad integer value '" + body + "'");
      return Value::Integer(*parsed);
    }
    case 'r': {
      const auto bits = ParseUint64("0x" + body);
      if (!bits || body.size() != 16) {
        return ParseError("bad real value '" + body + "'");
      }
      double d;
      const std::uint64_t b = *bits;
      std::memcpy(&d, &b, sizeof d);
      return Value::Real(d);
    }
    case 't':
      return Value::Text_(body);
    case 'b':
      return Value::Blob(body);
    default:
      return ParseError("unknown value tag '" + encoded.substr(0, 1) + "'");
  }
}

}  // namespace goofi::db
