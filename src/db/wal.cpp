#include "db/wal.h"

#include <cstdio>
#include <cstring>
#include <optional>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace goofi::db::wal {

namespace fs = std::filesystem;

// ---- file seam ----------------------------------------------------------

namespace {

// stdio-backed appender: the log is the hot path, and FILE* buffering +
// explicit fflush at sync points is the cheapest portable way to batch.
class StdioWalFile : public WalFile {
 public:
  explicit StdioWalFile(std::FILE* file) : file_(file) {}
  ~StdioWalFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view bytes) override {
    if (file_ == nullptr) return IoError("log file is closed");
    if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
      return IoError("short write to wal.log");
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (file_ == nullptr) return IoError("log file is closed");
    if (std::fflush(file_) != 0) return IoError("cannot flush wal.log");
    return Status::Ok();
  }

 private:
  std::FILE* file_;
};

void AppendU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void AppendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void AppendString(std::string& out, std::string_view s) {
  AppendU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

void AppendRow(std::string& out, const Row& row) {
  AppendU32(out, static_cast<std::uint32_t>(row.size()));
  for (const Value& value : row) AppendString(out, value.Encode());
}

// Bounds-checked little-endian reader over a payload.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::string String() {
    const std::uint32_t length = U32();
    if (!Need(length)) return {};
    std::string s(bytes_.substr(pos_, length));
    pos_ += length;
    return s;
  }
  bool ReadRow(Row& row) {
    const std::uint32_t count = U32();
    if (!ok_) return false;
    row.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
      auto value = Value::Decode(String());
      if (!ok_ || !value.ok()) {
        ok_ = false;
        return false;
      }
      row.push_back(std::move(*value));
    }
    return true;
  }

 private:
  bool Need(std::size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Decode one framed payload into a record; nullopt on malformed body.
std::optional<WalRecord> DecodePayload(std::string_view payload) {
  Reader reader(payload);
  WalRecord record;
  const std::uint8_t type = reader.U8();
  switch (type) {
    case static_cast<std::uint8_t>(RecordType::kSchema):
      record.type = RecordType::kSchema;
      record.schema_text = reader.String();
      break;
    case static_cast<std::uint8_t>(RecordType::kInsert):
      record.type = RecordType::kInsert;
      record.table = reader.String();
      if (!reader.ReadRow(record.row)) return std::nullopt;
      break;
    case static_cast<std::uint8_t>(RecordType::kUpdate): {
      record.type = RecordType::kUpdate;
      record.table = reader.String();
      const std::uint32_t n = reader.U32();
      for (std::uint32_t i = 0; i < n && reader.ok(); ++i) {
        const std::uint64_t index = reader.U64();
        Row row;
        if (!reader.ReadRow(row)) return std::nullopt;
        record.updates.emplace_back(index, std::move(row));
      }
      break;
    }
    case static_cast<std::uint8_t>(RecordType::kDelete): {
      record.type = RecordType::kDelete;
      record.table = reader.String();
      const std::uint32_t n = reader.U32();
      for (std::uint32_t i = 0; i < n && reader.ok(); ++i) {
        record.deletes.push_back(reader.U64());
      }
      break;
    }
    case static_cast<std::uint8_t>(RecordType::kDropTable):
      record.type = RecordType::kDropTable;
      record.table = reader.String();
      break;
    case static_cast<std::uint8_t>(RecordType::kCommit):
      record.type = RecordType::kCommit;
      record.commit_sequence = reader.U64();
      break;
    default:
      return std::nullopt;
  }
  if (!reader.ok() || !reader.AtEnd()) return std::nullopt;
  return record;
}

}  // namespace

Result<std::unique_ptr<WalFile>> OpenLogFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return IoError("cannot open '" + path + "' for appending");
  }
  return std::unique_ptr<WalFile>(new StdioWalFile(file));
}

// ---- record codec -------------------------------------------------------

std::string EncodeSchemaRecord(const std::string& schema_text) {
  std::string payload;
  payload.push_back(static_cast<char>(RecordType::kSchema));
  AppendString(payload, schema_text);
  return payload;
}

std::string EncodeInsertRecord(const std::string& table, const Row& row) {
  std::string payload;
  payload.push_back(static_cast<char>(RecordType::kInsert));
  AppendString(payload, table);
  AppendRow(payload, row);
  return payload;
}

std::string EncodeUpdateRecord(
    const std::string& table,
    const std::vector<std::pair<std::uint64_t, Row>>& updates) {
  std::string payload;
  payload.push_back(static_cast<char>(RecordType::kUpdate));
  AppendString(payload, table);
  AppendU32(payload, static_cast<std::uint32_t>(updates.size()));
  for (const auto& [index, row] : updates) {
    AppendU64(payload, index);
    AppendRow(payload, row);
  }
  return payload;
}

std::string EncodeDeleteRecord(const std::string& table,
                               const std::vector<std::uint64_t>& indices) {
  std::string payload;
  payload.push_back(static_cast<char>(RecordType::kDelete));
  AppendString(payload, table);
  AppendU32(payload, static_cast<std::uint32_t>(indices.size()));
  for (const std::uint64_t index : indices) AppendU64(payload, index);
  return payload;
}

std::string EncodeDropRecord(const std::string& table) {
  std::string payload;
  payload.push_back(static_cast<char>(RecordType::kDropTable));
  AppendString(payload, table);
  return payload;
}

std::string EncodeCommitRecord(std::uint64_t sequence) {
  std::string payload;
  payload.push_back(static_cast<char>(RecordType::kCommit));
  AppendU64(payload, sequence);
  return payload;
}

std::string FrameRecord(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 8);
  AppendU32(frame, static_cast<std::uint32_t>(payload.size()));
  AppendU32(frame, Crc32(payload));
  frame.append(payload.data(), payload.size());
  return frame;
}

std::string EncodeWalHeader(std::uint64_t generation) {
  std::string header(kWalMagic, sizeof(kWalMagic));
  AppendU32(header, kWalVersion);
  AppendU32(header, 0);  // reserved
  AppendU64(header, generation);
  return header;
}

// ---- log reading --------------------------------------------------------

WalReadResult ReadWal(std::string_view bytes) {
  WalReadResult result;
  result.total_bytes = bytes.size();
  if (bytes.size() < kWalHeaderSize ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    result.note = "missing or torn log header";
    return result;
  }
  Reader header(bytes.substr(sizeof(kWalMagic), kWalHeaderSize -
                                                    sizeof(kWalMagic)));
  const std::uint32_t version = header.U32();
  header.U32();  // reserved
  const std::uint64_t generation = header.U64();
  if (version != kWalVersion) {
    result.note = StrFormat("unsupported wal version %u", version);
    return result;
  }
  result.header_valid = true;
  result.generation = generation;
  result.committed_bytes = kWalHeaderSize;

  std::size_t pos = kWalHeaderSize;
  std::vector<WalRecord> batch;  // records since the last commit
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      result.torn_tail = true;
      result.note = "torn frame header at end of log";
      break;
    }
    Reader frame_header(bytes.substr(pos, 8));
    const std::uint32_t length = frame_header.U32();
    const std::uint32_t crc = frame_header.U32();
    if (bytes.size() - pos - 8 < length) {
      result.torn_tail = true;
      result.note = StrFormat("torn record at offset %zu", pos);
      break;
    }
    const std::string_view payload = bytes.substr(pos + 8, length);
    if (Crc32(payload) != crc) {
      result.checksum_failure = true;
      result.note = StrFormat("checksum mismatch at offset %zu", pos);
      break;
    }
    auto record = DecodePayload(payload);
    if (!record) {
      result.checksum_failure = true;
      result.note = StrFormat("undecodable record at offset %zu", pos);
      break;
    }
    pos += 8 + length;
    ++result.records_valid;
    if (record->type == RecordType::kCommit) {
      ++result.commits;
      result.last_commit_sequence = record->commit_sequence;
      for (WalRecord& r : batch) result.committed.push_back(std::move(r));
      batch.clear();
      result.committed_bytes = pos;
    } else {
      batch.push_back(std::move(*record));
    }
  }
  result.records_uncommitted = batch.size();
  return result;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return IoError("cannot write '" + temp + "'");
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.flush()) return IoError("short write to '" + temp + "'");
  }
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) return IoError("cannot rename '" + temp + "' into place");
  return Status::Ok();
}

// ---- table snapshots ----------------------------------------------------

std::string EncodeTableSnapshot(const std::string& schema_text,
                                const std::vector<Row>& rows) {
  std::string bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendU32(bytes, kWalVersion);
  AppendU32(bytes, 0);  // reserved
  AppendString(bytes, schema_text);
  AppendU64(bytes, rows.size());
  for (const Row& row : rows) AppendRow(bytes, row);
  AppendU32(bytes, Crc32(bytes));
  return bytes;
}

Result<DecodedSnapshot> DecodeTableSnapshot(std::string_view bytes) {
  if (bytes.size() < sizeof(kSnapshotMagic) + 4 ||
      std::memcmp(bytes.data(), kSnapshotMagic,
                  sizeof(kSnapshotMagic)) != 0) {
    return DataLossError("bad snapshot magic");
  }
  Reader trailer(bytes.substr(bytes.size() - 4));
  if (trailer.U32() != Crc32(bytes.substr(0, bytes.size() - 4))) {
    return DataLossError("snapshot checksum mismatch");
  }
  Reader reader(bytes.substr(sizeof(kSnapshotMagic),
                             bytes.size() - sizeof(kSnapshotMagic) - 4));
  const std::uint32_t version = reader.U32();
  reader.U32();  // reserved
  if (version != kWalVersion) {
    return DataLossError(StrFormat("unsupported snapshot version %u",
                                   version));
  }
  DecodedSnapshot snapshot;
  snapshot.schema_text = reader.String();
  const std::uint64_t row_count = reader.U64();
  for (std::uint64_t i = 0; i < row_count; ++i) {
    Row row;
    if (!reader.ReadRow(row)) return DataLossError("undecodable snapshot row");
    snapshot.rows.push_back(std::move(row));
  }
  if (!reader.ok() || !reader.AtEnd()) {
    return DataLossError("trailing bytes in snapshot");
  }
  return snapshot;
}

std::string EncodeManifest(std::uint64_t generation,
                           const std::vector<std::string>& tables) {
  std::vector<std::pair<std::string, std::uint64_t>> with_generations;
  with_generations.reserve(tables.size());
  for (const std::string& table : tables) {
    with_generations.emplace_back(table, generation);
  }
  return EncodeManifest(generation, with_generations);
}

std::string EncodeManifest(
    std::uint64_t generation,
    const std::vector<std::pair<std::string, std::uint64_t>>& tables) {
  std::string text = "goofi-wal-manifest v2\n";
  text += StrFormat("generation %llu\n",
                    static_cast<unsigned long long>(generation));
  for (const auto& [table, table_generation] : tables) {
    // Tab-separated: EscapeTsvField keeps a literal tab out of the name.
    text += "table\t" + EscapeTsvField(table) + "\t" +
            StrFormat("%llu",
                      static_cast<unsigned long long>(table_generation)) +
            "\n";
  }
  return text;
}

Result<DecodedManifest> DecodeManifest(std::string_view text) {
  std::istringstream stream{std::string(text)};
  std::string line;
  if (!std::getline(stream, line)) return DataLossError("empty manifest");
  const bool v1 = line == "goofi-wal-manifest v1";
  if (!v1 && line != "goofi-wal-manifest v2") {
    return DataLossError("bad manifest header");
  }
  DecodedManifest manifest;
  bool have_generation = false;
  std::vector<std::string> pending_v1_tables;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (StartsWith(line, "generation ")) {
      const auto generation = ParseUint64(line.substr(11));
      if (!generation) return DataLossError("bad manifest generation");
      manifest.generation = *generation;
      have_generation = true;
    } else if (v1 && StartsWith(line, "table ")) {
      const auto name = UnescapeTsvField(line.substr(6));
      if (!name) return DataLossError("bad manifest table line");
      pending_v1_tables.push_back(*name);
    } else if (!v1 && StartsWith(line, "table\t")) {
      const std::vector<std::string> fields = SplitString(line, '\t');
      if (fields.size() != 3) {
        return DataLossError("bad manifest table line: " + line);
      }
      const auto name = UnescapeTsvField(fields[1]);
      const auto table_generation = ParseUint64(fields[2]);
      if (!name || !table_generation) {
        return DataLossError("bad manifest table line: " + line);
      }
      manifest.tables.push_back(*name);
      manifest.table_generations.push_back(*table_generation);
    } else {
      return DataLossError("unknown manifest line: " + line);
    }
  }
  if (!have_generation) return DataLossError("manifest missing generation");
  // v1: every table snapshot lives at the shared generation.
  for (std::string& name : pending_v1_tables) {
    manifest.tables.push_back(std::move(name));
    manifest.table_generations.push_back(manifest.generation);
  }
  return manifest;
}

}  // namespace goofi::db::wal
