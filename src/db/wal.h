// Write-ahead log format for the embedded database.
//
// A WAL database directory holds
//
//   wal.log            header + length-prefixed, CRC32-checksummed records
//   snapshot.manifest  table list + snapshot generation (text, renamed
//                      into place atomically)
//   <table>.snap       checkpointed binary table snapshots
//
// The log is append-only: every FK-checked mutation becomes a record in
// an in-memory batch, and a group commit flushes the batch plus a commit
// marker in one write. Recovery replays records up to the last valid
// commit marker — a torn tail (crash mid-write) or a checksum-failing
// record ends replay at the preceding commit, so a reader never observes
// a partial batch. Compaction folds the log into fresh table snapshots
// and an empty log under a bumped generation number.
//
// This header exposes the record codec, the file-reading plumbing, and a
// WalFile seam so the crash-injection tests can interpose torn/corrupted
// writes between the engine and the filesystem (GOOFI injecting faults
// into itself).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "db/table.h"
#include "util/crc32.h"
#include "util/status.h"

namespace goofi::db::wal {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
// The implementation lives in util/crc32.h so the socket framing
// (util/socket.h) shares the exact same checksum.
using goofi::Crc32;

// ---- file seam ----------------------------------------------------------

// Append-only byte sink for the log. Production code uses OpenLogFile;
// tests wrap it with a fault-injecting decorator (tests/db/wal_crash).
class WalFile {
 public:
  virtual ~WalFile() = default;
  virtual Status Append(std::string_view bytes) = 0;
  virtual Status Sync() = 0;
};

// Opens `path` for appending (the file must already exist; recovery
// truncates any torn tail before the writer attaches).
Result<std::unique_ptr<WalFile>> OpenLogFile(const std::string& path);

using WalFileFactory =
    std::function<Result<std::unique_ptr<WalFile>>(const std::string& path)>;

// ---- record codec -------------------------------------------------------

enum class RecordType : std::uint8_t {
  kSchema = 1,     // CREATE TABLE: serialized schema text
  kInsert = 2,     // one row appended to a table
  kUpdate = 3,     // in-place row updates: (row index, full new row) pairs
  kDelete = 4,     // row deletions by ascending original index
  kDropTable = 5,  // DROP TABLE
  kCommit = 6,     // group-commit marker with a running sequence number
};

// One decoded record. Only the fields for `type` are meaningful.
struct WalRecord {
  RecordType type = RecordType::kCommit;
  std::string table;                                  // all but kCommit
  std::string schema_text;                            // kSchema
  Row row;                                            // kInsert
  std::vector<std::pair<std::uint64_t, Row>> updates; // kUpdate
  std::vector<std::uint64_t> deletes;                 // kDelete (ascending)
  std::uint64_t commit_sequence = 0;                  // kCommit
};

// Payload encoders. A frame on disk is
//   u32 payload_length | u32 crc32(payload) | payload
// with the payload starting with the u8 RecordType.
std::string EncodeSchemaRecord(const std::string& schema_text);
std::string EncodeInsertRecord(const std::string& table, const Row& row);
std::string EncodeUpdateRecord(
    const std::string& table,
    const std::vector<std::pair<std::uint64_t, Row>>& updates);
std::string EncodeDeleteRecord(const std::string& table,
                               const std::vector<std::uint64_t>& indices);
std::string EncodeDropRecord(const std::string& table);
std::string EncodeCommitRecord(std::uint64_t sequence);

// Wrap an encoded payload in the length+CRC frame.
std::string FrameRecord(std::string_view payload);

// Log header: magic + format version + snapshot generation.
inline constexpr char kWalMagic[8] = {'G', 'O', 'O', 'F', 'I', 'W', 'L', '1'};
inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderSize = 24;

std::string EncodeWalHeader(std::uint64_t generation);

// ---- log reading --------------------------------------------------------

// The committed prefix of a log plus everything a verifier wants to know
// about the rest of the file.
struct WalReadResult {
  bool header_valid = false;
  std::uint64_t generation = 0;
  std::vector<WalRecord> committed;   // records up to the last commit
  std::uint64_t commits = 0;          // commit markers in the valid prefix
  std::uint64_t last_commit_sequence = 0;
  // Byte offset just past the last commit frame (or past the header when
  // no commit survives). An appending writer truncates the file here.
  std::uint64_t committed_bytes = 0;
  std::uint64_t total_bytes = 0;      // file size as read
  std::uint64_t records_valid = 0;    // well-formed frames seen (any type)
  // Uncommitted records after the last commit (lost batch on recovery).
  std::uint64_t records_uncommitted = 0;
  bool torn_tail = false;             // file ends mid-frame
  bool checksum_failure = false;      // a frame failed its CRC
  std::string note;                   // human-readable diagnosis for dbck
};

// Decode `bytes` (a whole wal.log). Never fails: damage is reported in
// the result and the committed prefix is whatever survives it.
WalReadResult ReadWal(std::string_view bytes);

// Read a file fully into memory. NotFound if it does not exist.
Result<std::string> ReadFileBytes(const std::string& path);

// Write bytes to `path` via a temp file + rename (atomic publish).
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

// ---- table snapshots ----------------------------------------------------

inline constexpr char kSnapshotMagic[8] =
    {'G', 'O', 'O', 'F', 'I', 'S', 'N', '1'};

// Serialize a table (schema text + rows) into the snapshot byte format,
// CRC-trailered so dbck can verify it.
std::string EncodeTableSnapshot(const std::string& schema_text,
                                const std::vector<Row>& rows);
struct DecodedSnapshot {
  std::string schema_text;
  std::vector<Row> rows;
};
Result<DecodedSnapshot> DecodeTableSnapshot(std::string_view bytes);

// snapshot.manifest. Two text formats are read:
//   v1  "goofi-wal-manifest v1": one shared generation; every table's
//       snapshot file is <table>.<generation>.snap.
//   v2  "goofi-wal-manifest v2": the shared generation names the live
//       log, and each table line carries its own snapshot generation —
//       incremental compaction rewrites only dirty tables, so a clean
//       table keeps pointing at its older snapshot file.
// Writers emit v2; v1 directories from before incremental compaction
// keep loading (every per-table generation = the shared one).
std::string EncodeManifest(std::uint64_t generation,
                           const std::vector<std::string>& tables);
std::string EncodeManifest(
    std::uint64_t generation,
    const std::vector<std::pair<std::string, std::uint64_t>>& tables);
struct DecodedManifest {
  std::uint64_t generation = 0;
  std::vector<std::string> tables;  // FK-dependency order
  // Index-aligned with `tables`: the generation in each table's
  // snapshot file name (== `generation` for every table of a v1 file).
  std::vector<std::uint64_t> table_generations;
};
Result<DecodedManifest> DecodeManifest(std::string_view text);

}  // namespace goofi::db::wal
