// Secondary (non-unique) hash indexes over hot analysis columns.
//
// A SecondaryIndex maps an encoded cell value to the ascending list of
// row indices holding it. The executor consults these for equality
// predicates on columns declared INDEXED (campaign name, outcome class,
// parent experiment — the §3.4 analysis keys), turning full scans into
// bucket lookups while preserving row order, so indexed results are
// row-for-row identical to a scan.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/value.h"

namespace goofi::db {

class SecondaryIndex {
 public:
  // Record that row `row_index` holds `key`. Rows must be added in
  // ascending row order (the table inserts append-only and rebuilds
  // front-to-back), which keeps each bucket sorted for free.
  void Add(const Value& key, std::size_t row_index);

  // Rows holding `key`, ascending; nullptr when none. NULL never matches
  // (SQL equality semantics — callers skip NULL probes anyway).
  const std::vector<std::size_t>* Find(const Value& key) const;

  void Clear() { buckets_.clear(); }
  std::size_t key_count() const { return buckets_.size(); }

 private:
  std::unordered_map<std::string, std::vector<std::size_t>> buckets_;
};

}  // namespace goofi::db
