#include "db/table.h"

#include <cassert>

namespace goofi::db {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  for (std::size_t i = 0; i < schema_.columns().size(); ++i) {
    if (schema_.columns()[i].unique) {
      unique_columns_.push_back(i);
    } else if (schema_.columns()[i].indexed) {
      secondary_columns_.push_back(i);
    }
  }
  indexes_.resize(unique_columns_.size());
  secondary_indexes_.resize(secondary_columns_.size());
}

Status Table::Insert(Row row) {
  RETURN_IF_ERROR(schema_.CheckRow(row));
  // UNIQUE checks before any mutation.
  for (std::size_t u = 0; u < unique_columns_.size(); ++u) {
    const Value& v = row[unique_columns_[u]];
    if (v.is_null()) continue;  // SQL: NULLs don't collide
    if (indexes_[u].count(v.Encode()) != 0) {
      return ConstraintViolationError(
          "UNIQUE violated for '" + schema_.table_name() + "." +
          schema_.columns()[unique_columns_[u]].name +
          "' value " + v.ToDisplayString());
    }
  }
  const std::size_t index = rows_.size();
  for (std::size_t u = 0; u < unique_columns_.size(); ++u) {
    const Value& v = row[unique_columns_[u]];
    if (!v.is_null()) indexes_[u].emplace(v.Encode(), index);
  }
  for (std::size_t s = 0; s < secondary_columns_.size(); ++s) {
    secondary_indexes_[s].Add(row[secondary_columns_[s]], index);
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

bool Table::HasSecondaryIndex(std::size_t column) const {
  for (const std::size_t s : secondary_columns_) {
    if (s == column) return true;
  }
  return false;
}

const std::vector<std::size_t>* Table::FindBySecondary(
    std::size_t column, const Value& key) const {
  for (std::size_t s = 0; s < secondary_columns_.size(); ++s) {
    if (secondary_columns_[s] == column) {
      return secondary_indexes_[s].Find(key);
    }
  }
  assert(false && "FindBySecondary on a column without a secondary index");
  return nullptr;
}

std::optional<std::size_t> Table::FindByUnique(std::size_t column,
                                               const Value& key) const {
  if (key.is_null()) return std::nullopt;
  for (std::size_t u = 0; u < unique_columns_.size(); ++u) {
    if (unique_columns_[u] == column) {
      const auto it = indexes_[u].find(key.Encode());
      if (it == indexes_[u].end()) return std::nullopt;
      return it->second;
    }
  }
  assert(false && "FindByUnique on a non-unique column");
  return std::nullopt;
}

std::vector<std::size_t> Table::FindRows(
    const std::function<bool(const Row&)>& predicate) const {
  std::vector<std::size_t> matched;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (predicate(rows_[i])) matched.push_back(i);
  }
  return matched;
}

bool Table::ContainsValue(std::size_t column, const Value& key) const {
  if (key.is_null()) return false;
  for (std::size_t u = 0; u < unique_columns_.size(); ++u) {
    if (unique_columns_[u] == column) {
      return indexes_[u].count(key.Encode()) != 0;
    }
  }
  for (const Row& row : rows_) {
    if (row[column] == key) return true;
  }
  return false;
}

Result<std::size_t> Table::Update(
    const std::function<bool(const Row&)>& predicate,
    const std::vector<ColumnUpdate>& updates,
    std::vector<std::pair<std::uint64_t, Row>>* applied) {
  const std::vector<std::size_t> matched = FindRows(predicate);
  if (matched.empty()) return std::size_t{0};

  // Phase 1: build the updated rows and validate them (types, NOT NULL,
  // UNIQUE among survivors + updated rows) without mutating anything.
  std::vector<Row> updated;
  updated.reserve(matched.size());
  for (const std::size_t i : matched) {
    Row candidate = rows_[i];
    for (const ColumnUpdate& update : updates) {
      assert(update.column < candidate.size());
      candidate[update.column] = update.value;
      RETURN_IF_ERROR(schema_.CheckValue(update.column,
                                         candidate[update.column]));
    }
    updated.push_back(std::move(candidate));
  }
  for (const std::size_t unique_col : unique_columns_) {
    std::unordered_map<std::string, int> seen;
    // Untouched rows keep their keys.
    std::size_t next_match = 0;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const bool is_matched =
          next_match < matched.size() && matched[next_match] == i;
      const Row& effective =
          is_matched ? updated[next_match] : rows_[i];
      if (is_matched) ++next_match;
      const Value& v = effective[unique_col];
      if (v.is_null()) continue;
      if (++seen[v.Encode()] > 1) {
        return ConstraintViolationError(
            "UNIQUE violated for '" + schema_.table_name() + "." +
            schema_.columns()[unique_col].name + "' value " +
            v.ToDisplayString() + " during UPDATE");
      }
    }
  }

  // Phase 2: commit.
  for (std::size_t m = 0; m < matched.size(); ++m) {
    if (applied != nullptr) applied->emplace_back(matched[m], updated[m]);
    rows_[matched[m]] = std::move(updated[m]);
  }
  RebuildIndexes();
  return matched.size();
}

std::size_t Table::Delete(const std::function<bool(const Row&)>& predicate,
                          std::vector<std::uint64_t>* deleted) {
  std::size_t removed = 0;
  std::vector<Row> kept;
  kept.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (predicate(rows_[i])) {
      ++removed;
      if (deleted != nullptr) deleted->push_back(i);
    } else {
      kept.push_back(std::move(rows_[i]));
    }
  }
  // Unconditionally adopt `kept`: the loop moved every surviving row out
  // of rows_, including when nothing matched.
  rows_ = std::move(kept);
  if (removed != 0) RebuildIndexes();
  return removed;
}

Status Table::ApplyUpdateBatch(
    const std::vector<std::pair<std::uint64_t, Row>>& updates) {
  for (const auto& [index, row] : updates) {
    if (index >= rows_.size() || row.size() != schema_.column_count()) {
      return DataLossError("update replay out of range in '" +
                           schema_.table_name() + "'");
    }
    rows_[index] = row;
  }
  if (!updates.empty()) RebuildIndexes();
  return Status::Ok();
}

Status Table::ApplyDeleteBatch(const std::vector<std::uint64_t>& ascending) {
  // Erase back-to-front so earlier indices stay valid.
  for (auto it = ascending.rbegin(); it != ascending.rend(); ++it) {
    if (*it >= rows_.size()) {
      return DataLossError("delete replay out of range in '" +
                           schema_.table_name() + "'");
    }
    rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  if (!ascending.empty()) RebuildIndexes();
  return Status::Ok();
}

void Table::Clear() {
  rows_.clear();
  RebuildIndexes();
}

void Table::RebuildIndexes() {
  for (auto& index : indexes_) index.clear();
  for (auto& index : secondary_indexes_) index.Clear();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    for (std::size_t u = 0; u < unique_columns_.size(); ++u) {
      const Value& v = rows_[i][unique_columns_[u]];
      if (!v.is_null()) indexes_[u][v.Encode()] = i;
    }
    for (std::size_t s = 0; s < secondary_columns_.size(); ++s) {
      secondary_indexes_[s].Add(rows_[i][secondary_columns_[s]], i);
    }
  }
}

}  // namespace goofi::db
