// Table schemas: typed columns, primary key, UNIQUE and NOT NULL
// constraints, and single-column foreign keys.
//
// The paper's Fig. 4 relies on foreign keys between TargetSystemData,
// CampaignData and LoggedSystemState to "prevent inconsistencies in the
// database ... while still being able to track all information"; the
// constraint machinery here is what enforces that.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "db/value.h"
#include "util/status.h"

namespace goofi::db {

// Declared column affinity. INTEGER columns accept INTEGER values; REAL
// columns accept INTEGER (widened) and REAL; TEXT/BLOB accept only their
// own type. ANY accepts everything (used by expression results).
enum class ColumnType { kInteger, kReal, kText, kBlob, kAny };

const char* ColumnTypeName(ColumnType type);
std::optional<ColumnType> ColumnTypeFromName(const std::string& name);

struct Column {
  std::string name;
  ColumnType type = ColumnType::kAny;
  bool not_null = false;
  bool unique = false;       // single-column UNIQUE constraint
  bool primary_key = false;  // implies unique + not_null
  // Maintain a secondary (non-unique) hash index; consulted by the SQL
  // executor for equality predicates. Redundant on UNIQUE/PK columns.
  bool indexed = false;
};

struct ForeignKey {
  std::string column;      // referencing column in this table
  std::string ref_table;   // referenced table
  std::string ref_column;  // referenced column (must be PK or UNIQUE)
};

class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::string table_name)
      : table_name_(std::move(table_name)) {}

  const std::string& table_name() const { return table_name_; }

  // Builder-style mutators used by CREATE TABLE and the C++ API.
  Status AddColumn(Column column);
  Status AddForeignKey(ForeignKey fk);

  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  std::size_t column_count() const { return columns_.size(); }
  // Index of a column by name, or nullopt.
  std::optional<std::size_t> FindColumn(const std::string& name) const;
  // Index of the PRIMARY KEY column, or nullopt for rowid-only tables.
  std::optional<std::size_t> primary_key_index() const { return pk_index_; }

  // Validate a full row: arity, NOT NULL, and type affinity (with
  // INTEGER->REAL widening applied in place).
  Status CheckRow(std::vector<Value>& row) const;

  // Validate that `value` is storable in column `index` (affinity +
  // NOT NULL), widening INTEGER->REAL in place when needed.
  Status CheckValue(std::size_t index, Value& value) const;

 private:
  std::string table_name_;
  std::vector<Column> columns_;
  std::vector<ForeignKey> foreign_keys_;
  std::optional<std::size_t> pk_index_;
};

}  // namespace goofi::db
