// Static pre-run liveness of a GOOFI-32 workload: the analysis-layer
// façade the campaign runner and the linter consume.
//
// Where core::PreInjectionAnalysis (paper §4, Barbosa et al.) derives
// live (location, time) points from the *reference run's* access trace,
// StaticLiveness derives a conservative over-approximation from the
// workload image alone — before any run. Campaigns use it to drop fault
// locations that are provably dead on every path (a register no
// reachable instruction ever reads), which shrinks the sampling space
// for free; the dynamic analysis then refines what remains.
//
// Soundness contract (checked by core::CrossCheckWorkload on every
// built-in workload): on a fault-free run, any (register, time) the
// dynamic analysis considers live must satisfy
// MayBeLiveAtPc(register, pc_at(time)). All queries answer `true` when
// the analysis cannot prove deadness.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "sim/assembler.h"
#include "util/status.h"

namespace goofi::analysis {

class StaticLiveness {
 public:
  // Analyze an already-assembled image, or assemble `source` first.
  static Result<StaticLiveness> Analyze(const sim::AssembledProgram& program);
  static Result<StaticLiveness> AnalyzeSource(const std::string& source);

  const Cfg& cfg() const { return cfg_; }
  const LivenessResult& liveness() const { return liveness_; }
  const MemorySummary& memory() const { return memory_; }

  // May register `reg` hold data some path starting at `pc` still
  // reads? True for any pc the CFG does not cover (conservative), false
  // always for r0.
  bool MayBeLiveAtPc(std::uint8_t reg, std::uint32_t pc) const;

  // Is `reg` live anywhere at all? A `false` licenses dropping the
  // register from a campaign's fault-location space outright.
  bool EverLive(std::uint8_t reg) const;

  // May the aligned word at `word_address` be read by the workload?
  // Widens to true whenever any load address was not statically
  // resolvable.
  bool MayWordHoldLiveData(std::uint32_t word_address) const;

  // Location-name front-end for core::LocationSpace::Restricted: false
  // only for scan elements "cpu.regs.rN" with !EverLive(N). Memory
  // ranges and every other element stay true — the comparison stage
  // reads the output region and the final scan-out regardless of
  // program dataflow.
  bool MayLocationHoldLiveData(const std::string& location_name) const;

 private:
  Cfg cfg_;
  LivenessResult liveness_;
  MemorySummary memory_;
};

}  // namespace goofi::analysis
