#include "analysis/linter.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/static_liveness.h"
#include "sim/assembler.h"
#include "target/cache_target.h"
#include "target/environment.h"
#include "target/io_map.h"
#include "target/target_types.h"
#include "target/workloads.h"
#include "util/config.h"
#include "util/strings.h"

namespace goofi::analysis {
namespace {

using sim::Opcode;
using Severity = LintDiagnostic::Severity;

// The assembler prefixes its diagnostics with "line %d: "; pull the
// number out so the linter can re-anchor them to file:line.
int ExtractLineNumber(std::string* message) {
  constexpr const char* kPrefix = "line ";
  if (!StartsWith(*message, kPrefix)) return 0;
  std::size_t pos = std::strlen(kPrefix);
  int line = 0;
  while (pos < message->size() && (*message)[pos] >= '0' &&
         (*message)[pos] <= '9') {
    line = line * 10 + ((*message)[pos] - '0');
    ++pos;
  }
  if (line == 0 || pos >= message->size() || (*message)[pos] != ':') {
    return 0;
  }
  ++pos;
  while (pos < message->size() && (*message)[pos] == ' ') ++pos;
  *message = message->substr(pos);
  return line;
}

// First 1-based line whose (trimmed) content assigns `key`, for ini
// diagnostics; 0 when not found.
int LineOfKey(const std::string& text, const std::string& key) {
  std::istringstream stream(text);
  std::string line;
  int number = 0;
  while (std::getline(stream, line)) {
    ++number;
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line.compare(start, key.size(), key) != 0) continue;
    std::size_t after = start + key.size();
    if (after + 1 < line.size() && line[after] == '[' &&
        line[after + 1] == ']') {
      after += 2;
    }
    while (after < line.size() && (line[after] == ' ' || line[after] == '\t')) {
      ++after;
    }
    if (after < line.size() && line[after] == '=') return number;
  }
  return 0;
}

void Add(std::vector<LintDiagnostic>* out, Severity severity,
         const std::string& file, int line, const std::string& check,
         std::string message) {
  out->push_back({severity, file, line, check, std::move(message)});
}

struct Segment {
  std::uint32_t base;
  std::uint32_t size;
  const char* name;
};
constexpr Segment kSegments[] = {
    {target::kCodeBase, target::kCodeSize, "code"},
    {target::kDataBase, target::kDataSize, "data"},
    {target::kStackBase, target::kStackSize, "stack"},
    {target::kIoBase, target::kIoSize, "io"},
};

const Segment* SegmentOf(std::uint32_t address) {
  for (const Segment& segment : kSegments) {
    if (address >= segment.base && address - segment.base < segment.size) {
      return &segment;
    }
  }
  return nullptr;
}

int SourceLineOf(const sim::AssembledProgram& program, std::uint32_t pc) {
  const auto it = program.source_lines.find(pc);
  return it == program.source_lines.end() ? 0 : it->second;
}

}  // namespace

std::string FormatDiagnostic(const LintDiagnostic& diagnostic) {
  const char* severity =
      diagnostic.severity == Severity::kError ? "error" : "warning";
  if (diagnostic.line > 0) {
    return StrFormat("%s:%d: %s: %s [%s]", diagnostic.file.c_str(),
                     diagnostic.line, severity, diagnostic.message.c_str(),
                     diagnostic.check.c_str());
  }
  return StrFormat("%s: %s: %s [%s]", diagnostic.file.c_str(), severity,
                   diagnostic.message.c_str(), diagnostic.check.c_str());
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatDiagnosticsJson(
    const std::vector<LintDiagnostic>& diagnostics) {
  if (diagnostics.empty()) return "[]\n";
  std::string out = "[\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const LintDiagnostic& diagnostic = diagnostics[i];
    out += StrFormat(
        "  {\"file\": \"%s\", \"line\": %d, \"check\": \"%s\", "
        "\"severity\": \"%s\", \"message\": \"%s\"}%s\n",
        JsonEscape(diagnostic.file).c_str(), diagnostic.line,
        JsonEscape(diagnostic.check).c_str(),
        diagnostic.severity == Severity::kError ? "error" : "warning",
        JsonEscape(diagnostic.message).c_str(),
        i + 1 < diagnostics.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

std::vector<LintDiagnostic> DeduplicateDiagnostics(
    std::vector<LintDiagnostic> diagnostics) {
  std::set<std::tuple<std::string, int, std::string>> seen;
  std::vector<LintDiagnostic> out;
  out.reserve(diagnostics.size());
  for (LintDiagnostic& diagnostic : diagnostics) {
    if (seen.emplace(diagnostic.file, diagnostic.line, diagnostic.check)
            .second) {
      out.push_back(std::move(diagnostic));
    }
  }
  return out;
}

bool HasErrors(const std::vector<LintDiagnostic>& diagnostics) {
  for (const LintDiagnostic& diagnostic : diagnostics) {
    if (diagnostic.severity == Severity::kError) return true;
  }
  return false;
}

std::vector<LintDiagnostic> LintWorkloadSource(const std::string& file,
                                               const std::string& source) {
  std::vector<LintDiagnostic> out;
  const auto assembled = sim::Assemble(source);
  if (!assembled.ok()) {
    std::string message = assembled.status().message();
    const int line = ExtractLineNumber(&message);
    Add(&out, Severity::kError, file, line, "asm-error", message);
    return out;
  }
  const sim::AssembledProgram& program = *assembled;
  const auto built = Cfg::Build(program);
  if (!built.ok()) {
    Add(&out, Severity::kError, file, 0, "bad-entry",
        built.status().message());
    return out;
  }
  const Cfg& cfg = *built;

  for (const Cfg::DeadRange& range : cfg.UnreachableCodeRanges(program)) {
    Add(&out, Severity::kWarning, file, SourceLineOf(program, range.begin),
        "unreachable-code",
        StrFormat("unreachable code: %u instruction%s no path from the "
                  "entry point executes",
                  (range.end - range.begin) / 4,
                  range.end - range.begin == 4 ? "" : "s"));
  }

  for (const auto& [pc, insn] : cfg.instructions()) {
    if (insn.opcode == Opcode::kJal || insn.opcode == Opcode::kJalr) {
      continue;  // discarding the link via ra = r0 is deliberate idiom
    }
    if ((sim::InstructionDefUse(insn).defs & 1u) != 0) {
      Add(&out, Severity::kWarning, file, SourceLineOf(program, pc),
          "write-to-r0",
          StrFormat("'%s' writes to r0, which ignores writes",
                    sim::Disassemble(insn).c_str()));
    }
  }

  for (const auto& [begin, block] : cfg.blocks()) {
    if (!block.falls_off_image) continue;
    const std::uint32_t last_pc = block.end - 4;
    Add(&out, Severity::kError, file, SourceLineOf(program, last_pc),
        "falls-off-image",
        "control flow can run past the assembled image (missing halt, "
        "jump, or branch target outside the code)");
  }

  for (const MaybeUninitRead& read : FindMaybeUninitReads(cfg)) {
    Add(&out, Severity::kWarning, file, SourceLineOf(program, read.pc),
        "maybe-uninit-read",
        StrFormat("r%u may be read before any instruction writes it "
                  "(registers reset to zero)",
                  read.reg));
  }

  const MemorySummary memory = ComputeMemorySummary(cfg);
  for (const auto& [pc, access] : memory.accesses) {
    if (!access.address.has_value()) continue;
    const Segment* segment = SegmentOf(*access.address);
    if (segment == nullptr) {
      Add(&out, Severity::kError, file, SourceLineOf(program, pc),
          "unmapped-address",
          StrFormat("%s of unmapped address 0x%08x (board memory map: "
                    "code/data/stack/io)",
                    access.is_store ? "store" : "load", *access.address));
    } else if (access.is_store && std::string(segment->name) == "code") {
      Add(&out, Severity::kWarning, file, SourceLineOf(program, pc),
          "store-to-code",
          StrFormat("store into the code segment at 0x%08x "
                    "(self-modifying code)",
                    *access.address));
    }
  }
  return out;
}

std::vector<LintDiagnostic> LintWorkloadSpecFile(const std::string& file) {
  std::vector<LintDiagnostic> out;
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    Add(&out, Severity::kError, file, 0, "io-error", "cannot read file");
    return out;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const auto parsed = Config::Parse(text);
  if (!parsed.ok()) {
    std::string message = parsed.status().message();
    const int line = ExtractLineNumber(&message);
    Add(&out, Severity::kError, file, line, "ini-error", message);
    return out;
  }
  const ConfigSection* section = parsed->FindSection("workload");
  if (section == nullptr) {
    Add(&out, Severity::kError, file, 0, "missing-section",
        "no [workload] section");
    return out;
  }

  static const std::set<std::string> kKnownKeys = {
      "name",           "assembly_file", "output_base", "output_length",
      "max_instructions", "max_iterations", "environment"};
  for (const auto& [key, value] : section->entries()) {
    (void)value;
    if (kKnownKeys.count(key) == 0) {
      Add(&out, Severity::kWarning, file, LineOfKey(text, key),
          "unknown-key", "unknown [workload] key '" + key + "'");
    }
  }
  if (section->GetStringOr("name", "").empty()) {
    Add(&out, Severity::kError, file, 0, "missing-key",
        "workload has no name");
  }

  const auto output_base = section->GetIntOr("output_base", 0);
  const auto output_length = section->GetIntOr("output_length", 0);
  if (output_length > 0) {
    const auto base = static_cast<std::uint32_t>(output_base);
    const Segment* lo = SegmentOf(base);
    const Segment* hi = SegmentOf(
        base + static_cast<std::uint32_t>(output_length) - 1);
    if (lo == nullptr || hi != lo) {
      Add(&out, Severity::kError, file, LineOfKey(text, "output_base"),
          "output-range",
          StrFormat("output region [0x%08x, 0x%08x) is not inside one "
                    "mapped segment",
                    base,
                    base + static_cast<std::uint32_t>(output_length)));
    }
  }

  const std::string environment = section->GetStringOr("environment", "");
  if (!environment.empty()) {
    const auto made = target::MakeEnvironment(environment);
    if (!made.ok()) {
      Add(&out, Severity::kError, file, LineOfKey(text, "environment"),
          "unknown-environment", made.status().message());
    }
  }

  const auto assembly_file = section->GetString("assembly_file");
  if (!assembly_file || assembly_file->empty()) {
    Add(&out, Severity::kError, file, 0, "missing-key",
        "workload has no assembly_file");
    return out;
  }
  std::string assembly_path = *assembly_file;
  const std::size_t slash = file.find_last_of('/');
  if (slash != std::string::npos && (*assembly_file)[0] != '/') {
    assembly_path = file.substr(0, slash + 1) + *assembly_file;
  }
  std::ifstream assembly_in(assembly_path, std::ios::binary);
  if (!assembly_in) {
    Add(&out, Severity::kError, file, LineOfKey(text, "assembly_file"),
        "io-error", "cannot read assembly file " + assembly_path);
    return out;
  }
  std::ostringstream assembly_buffer;
  assembly_buffer << assembly_in.rdbuf();
  const std::vector<LintDiagnostic> assembly_diagnostics =
      LintWorkloadSource(assembly_path, assembly_buffer.str());
  out.insert(out.end(), assembly_diagnostics.begin(),
             assembly_diagnostics.end());
  return out;
}

namespace {

// The [service] section of a goofi_serve deployment ini. Keys mirror
// service::ServiceConfig; the cross-field rules mirror what
// ServiceCore::Start rejects, so lint-clean means the daemon boots.
void LintServiceSection(const std::string& file, const std::string& text,
                        const ConfigSection& section,
                        std::vector<LintDiagnostic>* out) {
  static const std::set<std::string> kKnownKeys = {
      "root", "socket", "fleet_workers", "queue_limit",
      "max_campaign_jobs"};
  for (const auto& [key, value] : section.entries()) {
    (void)value;
    if (kKnownKeys.count(key) == 0) {
      Add(out, Severity::kWarning, file, LineOfKey(text, key),
          "unknown-key", "unknown [service] key '" + key + "'");
    }
  }
  const auto fleet = section.GetIntOr("fleet_workers", 4);
  if (fleet < 1) {
    Add(out, Severity::kError, file, LineOfKey(text, "fleet_workers"),
        "bad-value", "fleet_workers must be >= 1");
  }
  if (section.GetIntOr("queue_limit", 16) < 1) {
    Add(out, Severity::kError, file, LineOfKey(text, "queue_limit"),
        "bad-value",
        "queue_limit must be >= 1 (the daemon needs at least one "
        "submission slot)");
  }
  const auto max_jobs = section.GetIntOr("max_campaign_jobs", 0);
  if (section.Has("max_campaign_jobs") && max_jobs < 1) {
    Add(out, Severity::kError, file, LineOfKey(text, "max_campaign_jobs"),
        "bad-value", "max_campaign_jobs must be >= 1");
  }
  if (max_jobs > fleet && fleet >= 1) {
    Add(out, Severity::kError, file, LineOfKey(text, "max_campaign_jobs"),
        "jobs-exceed-fleet",
        StrFormat("max_campaign_jobs (%lld) exceeds fleet_workers (%lld): "
                  "no campaign can ever be allocated that many workers",
                  static_cast<long long>(max_jobs),
                  static_cast<long long>(fleet)));
  }
}

}  // namespace

std::vector<LintDiagnostic> LintCampaignText(
    const std::string& file, const std::string& text,
    const std::vector<target::TargetSystemInterface::LocationInfo>*
        locations) {
  std::vector<LintDiagnostic> out;
  const auto parsed = Config::Parse(text);
  if (!parsed.ok()) {
    std::string message = parsed.status().message();
    const int line = ExtractLineNumber(&message);
    Add(&out, Severity::kError, file, line, "ini-error", message);
    return out;
  }
  const ConfigSection* service = parsed->FindSection("service");
  if (service != nullptr) {
    LintServiceSection(file, text, *service, &out);
  }
  const ConfigSection* section = parsed->FindSection("campaign");
  if (section == nullptr) {
    // A pure [service] deployment ini is a complete file on its own.
    if (service == nullptr) {
      Add(&out, Severity::kError, file, 0, "missing-section",
          "no [campaign] section");
    }
    return out;
  }

  static const std::set<std::string> kKnownKeys = {
      "name",          "target",         "technique",
      "workload",      "experiments",    "seed",
      "fault_model",   "multiplicity",   "location",
      "time_window_lo", "time_window_hi", "trigger",
      "max_instructions", "max_iterations", "logging",
      "preinjection",  "static_analysis", "intermittent_period",
      "intermittent_occurrences", "stuck_to_one", "jobs",
      "experiment_timeout_ms", "max_retries", "retry_backoff_ms",
      "checkpoint_mode", "checkpoint_stride"};
  for (const auto& [key, value] : section->entries()) {
    (void)value;
    if (kKnownKeys.count(key) == 0) {
      Add(&out, Severity::kWarning, file, LineOfKey(text, key),
          "unknown-key", "unknown [campaign] key '" + key + "'");
    }
  }

  if (section->GetStringOr("name", "").empty()) {
    Add(&out, Severity::kError, file, 0, "missing-key",
        "campaign needs a name");
  }

  target::Technique technique = target::Technique::kScifi;
  if (const auto value = section->GetString("technique")) {
    const auto known = target::TechniqueFromName(*value);
    if (!known) {
      Add(&out, Severity::kError, file, LineOfKey(text, "technique"),
          "unknown-value", "unknown technique '" + *value + "'");
    } else {
      technique = *known;
    }
  }

  target::FaultModel::Kind model = target::FaultModel::Kind::kTransientBitFlip;
  std::optional<target::CacheFaultModel> cache_model;
  if (const auto value = section->GetString("fault_model")) {
    const auto known = target::FaultModelKindFromName(*value);
    const auto cache = target::CacheFaultModelFromName(*value);
    if (known) {
      model = *known;
    } else if (cache) {
      // Access-path models (target/cache_target.h): temporally a
      // transient flip; the name narrows the location family.
      cache_model = *cache;
    } else {
      Add(&out, Severity::kError, file, LineOfKey(text, "fault_model"),
          "unknown-value", "unknown fault model '" + *value + "'");
    }
  }

  const std::string logging = section->GetStringOr("logging", "normal");
  if (!EqualsIgnoreCase(logging, "normal") &&
      !EqualsIgnoreCase(logging, "detail")) {
    Add(&out, Severity::kError, file, LineOfKey(text, "logging"),
        "unknown-value", "unknown logging mode '" + logging + "'");
  }

  static const std::set<std::string> kTriggerKinds = {
      "instret", "rtc", "branch", "call", "pc", "data_read", "data_write"};
  const std::string trigger = section->GetStringOr("trigger", "instret");
  if (kTriggerKinds.count(trigger) == 0) {
    Add(&out, Severity::kError, file, LineOfKey(text, "trigger"),
        "unknown-value", "unknown trigger kind '" + trigger + "'");
  }

  const std::string workload = section->GetStringOr("workload", "");
  if (workload.empty()) {
    Add(&out, Severity::kError, file, 0, "missing-key",
        "campaign needs a workload");
  } else if (!target::GetBuiltinWorkload(workload).ok()) {
    Add(&out, Severity::kError, file, LineOfKey(text, "workload"),
        "unknown-workload",
        "unknown workload '" + workload + "' (the campaign runner "
        "resolves workloads by built-in name: " +
            JoinStrings(target::BuiltinWorkloadNames(), ", ") + ")");
  }

  if (section->GetIntOr("multiplicity", 1) <= 0) {
    Add(&out, Severity::kError, file, LineOfKey(text, "multiplicity"),
        "bad-value", "multiplicity must be >= 1");
  }
  if (section->Has("experiments") &&
      section->GetIntOr("experiments", 1) <= 0) {
    Add(&out, Severity::kWarning, file, LineOfKey(text, "experiments"),
        "bad-value", "campaign runs no experiments");
  }
  const auto window_lo = section->GetIntOr("time_window_lo", 0);
  const auto window_hi = section->GetIntOr("time_window_hi", 0);
  if (window_hi != 0 && window_lo > window_hi) {
    Add(&out, Severity::kError, file, LineOfKey(text, "time_window_lo"),
        "bad-value", "empty injection time window (lo > hi)");
  }

  if (model != target::FaultModel::Kind::kIntermittentBitFlip) {
    for (const char* key : {"intermittent_period",
                            "intermittent_occurrences"}) {
      if (section->Has(key)) {
        Add(&out, Severity::kWarning, file, LineOfKey(text, key),
            "ignored-key",
            StrFormat("'%s' only applies to fault_model = intermittent",
                      key));
      }
    }
  }
  if (model != target::FaultModel::Kind::kPermanentStuckAt &&
      section->Has("stuck_to_one")) {
    Add(&out, Severity::kWarning, file, LineOfKey(text, "stuck_to_one"),
        "ignored-key",
        "'stuck_to_one' only applies to fault_model = permanent");
  }
  if (technique == target::Technique::kSwifiPreRuntime &&
      section->Has("trigger")) {
    Add(&out, Severity::kWarning, file, LineOfKey(text, "trigger"),
        "ignored-key",
        "pre-runtime SWIFI has no trigger phase; 'trigger' is ignored");
  }
  // Supervision keys (core/supervision.h). Retries without a watchdog
  // deadline means a *wedged* (as opposed to cleanly failing) target
  // blocks the campaign forever on the very attempt a retry budget is
  // meant to survive — almost always a config mistake.
  if (section->GetIntOr("max_retries", 0) > 0 &&
      !section->Has("experiment_timeout_ms")) {
    Add(&out, Severity::kWarning, file, LineOfKey(text, "max_retries"),
        "retry-without-timeout",
        "'max_retries' without 'experiment_timeout_ms': a hung (not "
        "failing) experiment attempt is only detected by the watchdog "
        "deadline; set experiment_timeout_ms (or rely on the derived "
        "default only if the workload's instruction budget is set)");
  }
  if (section->Has("retry_backoff_ms") &&
      section->GetIntOr("max_retries", 0) == 0) {
    Add(&out, Severity::kWarning, file, LineOfKey(text, "retry_backoff_ms"),
        "ignored-key",
        "'retry_backoff_ms' only applies when max_retries > 0");
  }
  // Checkpoint-fork keys (core/checkpoint.h). Mirrors the supervision
  // checks: a stride without the mode is dead configuration, and a
  // stride past the workload's tool-level instruction budget records no
  // checkpoint beyond the boot snapshot, silently degrading every fork
  // to replay-from-reset.
  if (section->Has("checkpoint_stride") &&
      !section->GetBoolOr("checkpoint_mode", false)) {
    Add(&out, Severity::kWarning, file, LineOfKey(text, "checkpoint_stride"),
        "ignored-key",
        "'checkpoint_stride' only applies when checkpoint_mode = true");
  }
  if (section->GetBoolOr("checkpoint_mode", false)) {
    std::uint64_t budget =
        static_cast<std::uint64_t>(section->GetIntOr("max_instructions", 0));
    if (budget == 0 && !workload.empty()) {
      const auto builtin = target::GetBuiltinWorkload(workload);
      if (builtin.ok()) budget = builtin->termination.max_instructions;
    }
    const auto stride =
        static_cast<std::uint64_t>(section->GetIntOr("checkpoint_stride", 0));
    if (budget != 0 && stride > budget) {
      Add(&out, Severity::kWarning, file,
          LineOfKey(text, "checkpoint_stride"), "stride-past-budget",
          StrFormat("checkpoint_stride (%llu) exceeds the workload's "
                    "tool-level instruction budget (%llu): only the boot "
                    "snapshot is recorded and forking saves nothing",
                    static_cast<unsigned long long>(stride),
                    static_cast<unsigned long long>(budget)));
    }
    if (trigger != "instret") {
      Add(&out, Severity::kWarning, file, LineOfKey(text, "checkpoint_mode"),
          "ignored-key",
          "checkpoint-fork execution requires trigger = instret; the "
          "campaign falls back to replaying every experiment from reset");
    }
    if (EqualsIgnoreCase(logging, "detail")) {
      Add(&out, Severity::kWarning, file, LineOfKey(text, "checkpoint_mode"),
          "ignored-key",
          "checkpoint-fork execution requires logging = normal (detail "
          "mode traces the whole run); the campaign falls back to "
          "replaying every experiment from reset");
    }
  }
  // `static_analysis` is a tri-state: boolean (liveness pruning) or the
  // string "equivalence" (def-use class partitioning, core/runner.cpp).
  // Anything else silently parses as `false`, so flag it here.
  const std::string static_mode =
      AsciiToLower(section->GetStringOr("static_analysis", "false"));
  const bool equivalence_mode = static_mode == "equivalence";
  if (!equivalence_mode && section->Has("static_analysis") &&
      !section->GetBool("static_analysis").ok()) {
    Add(&out, Severity::kError, file, LineOfKey(text, "static_analysis"),
        "unknown-value",
        "static_analysis must be a boolean or 'equivalence', got '" +
            section->GetStringOr("static_analysis", "") + "'");
  }
  if (technique == target::Technique::kSwifiPreRuntime &&
      (equivalence_mode ||
       section->GetBoolOr("static_analysis", false))) {
    Add(&out, Severity::kWarning, file, LineOfKey(text, "static_analysis"),
        "ignored-key",
        "static analysis prunes register scan elements only; pre-runtime "
        "SWIFI cannot inject into them anyway");
  }
  // The equivalence partitioner's homogeneity argument only holds for a
  // single transient flip delivered at an instret trigger; the runner
  // rejects every other combination at PrepareCampaignRun time.
  if (equivalence_mode) {
    if (trigger != "instret") {
      Add(&out, Severity::kError, file, LineOfKey(text, "trigger"),
          "equivalence-needs-instret",
          "static_analysis = equivalence partitions the instruction-time "
          "axis; it requires trigger = instret");
    }
    if (model != target::FaultModel::Kind::kTransientBitFlip) {
      Add(&out, Severity::kError, file, LineOfKey(text, "fault_model"),
          "equivalence-needs-transient",
          "static_analysis = equivalence assumes a single transient flip "
          "whose corrupted value is read exactly once; use fault_model = "
          "transient");
    }
    if (section->GetIntOr("multiplicity", 1) > 1) {
      Add(&out, Severity::kError, file, LineOfKey(text, "multiplicity"),
          "equivalence-needs-single-fault",
          "static_analysis = equivalence requires multiplicity = 1 "
          "(classes are per-location def-use intervals)");
    }
    if (technique == target::Technique::kSwifiPreRuntime) {
      Add(&out, Severity::kError, file, LineOfKey(text, "technique"),
          "equivalence-needs-trigger-phase",
          "pre-runtime SWIFI has no injection-time axis to partition; "
          "use technique = scifi (or drop static_analysis = equivalence)");
    }
    if (EqualsIgnoreCase(logging, "detail")) {
      Add(&out, Severity::kError, file, LineOfKey(text, "logging"),
          "equivalence-needs-normal-logging",
          "detail logging traces every experiment individually; class "
          "representatives must be logged in normal mode");
    }
  }

  if (locations != nullptr) {
    // The extent of the advertised cache-coordinate family, for the
    // out-of-range diagnosis below (coordinates count from set0/word0,
    // so the largest advertised index bounds the geometry).
    bool has_cache_coordinates = false;
    std::uint32_t max_set = 0;
    std::uint32_t max_word = 0;
    for (const auto& info : *locations) {
      if (const auto coordinate = target::ParseCacheCoordinate(info.name)) {
        has_cache_coordinates = true;
        max_set = std::max(max_set, coordinate->set);
        max_word = std::max(max_word, coordinate->word);
      }
    }
    // A cache fault model only injects into its coordinate family; a
    // target that advertises no cache coordinates (anything but
    // cache_hierarchy) gives the campaign an empty fault space.
    if (cache_model.has_value()) {
      const char* family_glob =
          target::CacheFaultModelLocationGlob(*cache_model);
      bool family_reachable = false;
      for (const auto& info : *locations) {
        if (target::TechniqueCanReach(technique, info) &&
            GlobMatch(family_glob, info.name)) {
          family_reachable = true;
          break;
        }
      }
      if (!family_reachable) {
        Add(&out, Severity::kError, file, LineOfKey(text, "fault_model"),
            "cache-model-without-geometry",
            StrFormat("fault model '%s' needs '%s' cache coordinates "
                      "technique '%s' can reach, and the campaign's target "
                      "advertises none (set target = cache_hierarchy and "
                      "technique = scifi)",
                      target::CacheFaultModelName(*cache_model), family_glob,
                      target::TechniqueName(technique)));
      }
    }
    for (const std::string& filter : section->GetList("location")) {
      bool matched = false;
      for (const auto& info : *locations) {
        if (target::TechniqueCanReach(technique, info) &&
            GlobMatch(filter, info.name)) {
          matched = true;
          break;
        }
      }
      if (matched) continue;
      // A concrete cache coordinate that misses every advertised
      // location on a target that does have the family is not a glob
      // typo — it indexes past the real geometry.
      const auto coordinate = target::ParseCacheCoordinate(filter);
      if (coordinate.has_value() && has_cache_coordinates) {
        Add(&out, Severity::kError, file, LineOfKey(text, "location"),
            "coordinate-out-of-range",
            StrFormat("cache coordinate '%s' is outside the target's "
                      "geometry (largest advertised set is set%u, largest "
                      "word is word%u)",
                      filter.c_str(), max_set, max_word));
        continue;
      }
      Add(&out, Severity::kError, file, LineOfKey(text, "location"),
          "filter-matches-nothing",
          "location filter '" + filter + "' selects nothing technique '" +
              std::string(target::TechniqueName(technique)) +
              "' can inject into");
    }
  }
  return out;
}

}  // namespace goofi::analysis
