#include "analysis/static_liveness.h"

#include <cstring>

#include "util/strings.h"

namespace goofi::analysis {

Result<StaticLiveness> StaticLiveness::Analyze(
    const sim::AssembledProgram& program) {
  StaticLiveness analysis;
  ASSIGN_OR_RETURN(analysis.cfg_, Cfg::Build(program));
  analysis.liveness_ = ComputeLiveness(analysis.cfg_);
  analysis.memory_ = ComputeMemorySummary(analysis.cfg_);
  return analysis;
}

Result<StaticLiveness> StaticLiveness::AnalyzeSource(
    const std::string& source) {
  ASSIGN_OR_RETURN(const sim::AssembledProgram program,
                   sim::Assemble(source));
  return Analyze(program);
}

bool StaticLiveness::MayBeLiveAtPc(std::uint8_t reg,
                                   std::uint32_t pc) const {
  if (reg == 0) return false;
  if (reg > 15) return true;
  const auto it = liveness_.live_in.find(pc);
  if (it == liveness_.live_in.end()) return true;  // pc not modelled
  return (it->second & (1u << reg)) != 0;
}

bool StaticLiveness::EverLive(std::uint8_t reg) const {
  if (reg == 0) return false;
  if (reg > 15) return true;
  return (liveness_.ever_live & (1u << reg)) != 0;
}

bool StaticLiveness::MayWordHoldLiveData(std::uint32_t word_address) const {
  if (memory_.has_unknown_load) return true;
  return memory_.read_words.count(word_address & ~3u) != 0;
}

bool StaticLiveness::MayLocationHoldLiveData(
    const std::string& location_name) const {
  constexpr const char* kRegPrefix = "cpu.regs.r";
  if (!StartsWith(location_name, kRegPrefix)) return true;
  const std::string digits = location_name.substr(std::strlen(kRegPrefix));
  if (digits.empty() || digits.size() > 2) return true;
  unsigned reg = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return true;
    reg = reg * 10 + static_cast<unsigned>(c - '0');
  }
  if (reg > 15) return true;
  // r0 is a real scan element, but the CPU reads it as zero: a fault
  // parked there can never propagate.
  return reg != 0 && EverLive(static_cast<std::uint8_t>(reg));
}

}  // namespace goofi::analysis
