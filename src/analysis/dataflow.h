// Classic dataflow analyses over analysis::Cfg, feeding the static
// pre-run fault-list pruning (StaticLiveness) and the workload linter.
//
// All three analyses widen at the Cfg's declared widening points
// (has_indirect_successor, falls_off_image, and the trap handler's
// entry, whose machine context is the interrupted program's): results
// stay conservative — liveness over-approximates, definite assignment
// and constant propagation under-approximate — so clients never prune
// or diagnose based on an unsound fact.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "analysis/cfg.h"

namespace goofi::analysis {

// Backward register liveness. A register is live at pc when some path
// from pc reads it before any write. Bit N = rN; bit 0 (r0) is never
// set. This intentionally mirrors the *dynamic* notion used by
// core::PreInjectionAnalysis — the value the program will still read —
// and must over-approximate it on every fault-free run (the superset
// invariant checked by core::CrossCheckWorkload).
struct LivenessResult {
  // live-in mask per reachable instruction address.
  std::map<std::uint32_t, std::uint16_t> live_in;
  // Union of all live-in masks: registers that are live anywhere.
  std::uint16_t ever_live = 0;
};
LivenessResult ComputeLiveness(const Cfg& cfg);

// Forward definitely-assigned analysis (reaching definitions collapsed
// to "was there one on every path"). Reads of registers that some path
// reaches without any prior write are reported. Registers reset to
// zero, so these are lint warnings, not undefined behaviour.
struct MaybeUninitRead {
  std::uint32_t pc = 0;
  std::uint8_t reg = 0;
};
std::vector<MaybeUninitRead> FindMaybeUninitReads(const Cfg& cfg);

// Memory-word def/use summary for statically addressable loads and
// stores, by intra-procedural constant propagation of register values
// (LUI/ALU chains; calls widen unless returns are resolved). STB counts
// as a read *and* a write of its word: the untouched bytes stay live.
struct MemoryAccess {
  std::uint32_t pc = 0;
  bool is_store = false;
  bool is_byte = false;
  // Byte address when statically known on every path to `pc`.
  std::optional<std::uint32_t> address;
};
struct MemorySummary {
  // One entry per reachable load/store instruction, keyed by pc.
  std::map<std::uint32_t, MemoryAccess> accesses;
  // Word-aligned addresses of known-address reads/writes.
  std::set<std::uint32_t> read_words;
  std::set<std::uint32_t> written_words;
  // Some load/store address could not be resolved: word-level clients
  // must widen (any word may be read / written).
  bool has_unknown_load = false;
  bool has_unknown_store = false;
};
MemorySummary ComputeMemorySummary(const Cfg& cfg);

}  // namespace goofi::analysis
