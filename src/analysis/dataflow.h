// Classic dataflow analyses over analysis::Cfg, feeding the static
// pre-run fault-list pruning (StaticLiveness) and the workload linter.
//
// All three analyses widen at the Cfg's declared widening points
// (has_indirect_successor, falls_off_image, and the trap handler's
// entry, whose machine context is the interrupted program's): results
// stay conservative — liveness over-approximates, definite assignment
// and constant propagation under-approximate — so clients never prune
// or diagnose based on an unsound fact.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "analysis/cfg.h"

namespace goofi::analysis {

// Backward register liveness. A register is live at pc when some path
// from pc reads it before any write. Bit N = rN; bit 0 (r0) is never
// set. This intentionally mirrors the *dynamic* notion used by
// core::PreInjectionAnalysis — the value the program will still read —
// and must over-approximate it on every fault-free run (the superset
// invariant checked by core::CrossCheckWorkload).
struct LivenessResult {
  // live-in mask per reachable instruction address.
  std::map<std::uint32_t, std::uint16_t> live_in;
  // Union of all live-in masks: registers that are live anywhere.
  std::uint16_t ever_live = 0;
};
LivenessResult ComputeLiveness(const Cfg& cfg);

// Forward definitely-assigned analysis (reaching definitions collapsed
// to "was there one on every path"). Reads of registers that some path
// reaches without any prior write are reported. Registers reset to
// zero, so these are lint warnings, not undefined behaviour.
struct MaybeUninitRead {
  std::uint32_t pc = 0;
  std::uint8_t reg = 0;
};
std::vector<MaybeUninitRead> FindMaybeUninitReads(const Cfg& cfg);

// Backward first-use analysis: for each reachable pc and register, the
// set of instruction addresses at which the value `reg` holds on entry
// to pc may be *first read* (before any redefinition), over all paths.
// This refines liveness from "will some path read it?" to "which
// instruction consumes it?" — the static counterpart of the dynamic
// def-use intervals analysis::FaultSpacePartition builds from the
// access trace, and the superset side of the first-use crosscheck
// (core/crosscheck.h): every dynamically observed first use must be in
// the static may-first-use set at every pc of its interval.
//
// The per-(pc, reg) sets are capped at kMaxTrackedUses and widen to
// "unknown" (any read possible) beyond the cap and at the Cfg's
// declared widening points, mirroring ComputeLiveness.
struct FirstUseResult {
  static constexpr std::size_t kMaxTrackedUses = 16;

  struct UseSet {
    bool unknown = false;             // widened: any read is possible
    std::vector<std::uint32_t> pcs;   // sorted, <= kMaxTrackedUses

    bool Contains(std::uint32_t pc) const;
  };

  // Per reachable instruction address: one UseSet per register (index
  // 1..15; r0 stays empty).
  std::map<std::uint32_t, std::array<UseSet, 16>> first_use_in;

  // True when the value of `reg` entering `def_pc` may be first read at
  // `use_pc`. Conservatively true for pcs the analysis has no entry for.
  bool MayFirstUseAt(std::uint8_t reg, std::uint32_t def_pc,
                     std::uint32_t use_pc) const;
};
FirstUseResult ComputeFirstUses(const Cfg& cfg);

// Memory-word def/use summary for statically addressable loads and
// stores, by intra-procedural constant propagation of register values
// (LUI/ALU chains; calls widen unless returns are resolved). STB counts
// as a read *and* a write of its word: the untouched bytes stay live.
struct MemoryAccess {
  std::uint32_t pc = 0;
  bool is_store = false;
  bool is_byte = false;
  // Byte address when statically known on every path to `pc`.
  std::optional<std::uint32_t> address;
};
struct MemorySummary {
  // One entry per reachable load/store instruction, keyed by pc.
  std::map<std::uint32_t, MemoryAccess> accesses;
  // Word-aligned addresses of known-address reads/writes.
  std::set<std::uint32_t> read_words;
  std::set<std::uint32_t> written_words;
  // Some load/store address could not be resolved: word-level clients
  // must widen (any word may be read / written).
  bool has_unknown_load = false;
  bool has_unknown_store = false;
};
MemorySummary ComputeMemorySummary(const Cfg& cfg);

}  // namespace goofi::analysis
