// Fault-equivalence partitioning: def-use interval construction over
// the reference run's access trace.
//
// The pre-injection analysis (core/preinjection.h) answers "is this
// (location, time) point live?"; this pass answers the sharper
// question "which live points are *indistinguishable*?". Between two
// consecutive accesses to a location, an injected bit flip corrupts
// the identical stored value, the rest of the machine evolves exactly
// as in the fault-free run (nothing reads the corrupted value), and
// the first instruction to touch the location sees the identical
// corrupted value in the identical machine state. Every injection
// time in such an interval therefore produces the *same observation*
// — only the injection-to-detection latency shifts linearly with the
// injection time. One representative injection per interval predicts
// the whole class; core/runner samples exactly that way when a
// campaign sets `static_analysis = equivalence`, and core/crosscheck
// re-injects whole classes to prove the outcome-homogeneity claim.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/access_recorder.h"
#include "target/target_types.h"
#include "util/status.h"

namespace goofi::analysis {

// One def-use interval: the inclusive injection-time span between two
// consecutive accesses to a location ("injection at time t" = the flip
// happens just before the instruction with index t executes, so the
// span delimited by accesses at times a_prev < a is [a_prev+1, a]).
struct EquivInterval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  std::uint64_t weight() const { return hi - lo + 1; }
};

// Split one access-event stream into its def-use intervals. Unlike
// core::BuildIntervals this NEVER merges across an access: reads
// delimit classes too (injections on either side of a read reach
// different first uses and may behave differently), so the result is
// a partition of [0, last access time] with one interval ending at
// every access time. Exposed for unit tests.
std::vector<EquivInterval> BuildAccessIntervals(
    const std::vector<sim::AccessEvent>& events);

// The partition of a campaign's (location, bit, time) fault space into
// equivalence classes, built from the reference run's access trace.
// Modeled locations are the architectural ones the trace records:
// "cpu.regs.r1".."cpu.regs.r15" and "mem@<addr>" words. Anything else
// (cache arrays, IR, latches) is unmodeled — callers fall back to
// singleton classes there.
class FaultSpacePartition {
 public:
  // `end_time` is the reference run's instruction count.
  void Build(const sim::AccessRecorder& recorder, std::uint64_t end_time);

  // The def-use interval containing injection time `time` for the
  // target's location, or nullopt when the location is unmodeled or
  // the time lies past the location's last access (the fault is then
  // never consumed; the liveness filter rejects such points anyway).
  // The bit index does not change the interval — all bits of one
  // location share the same access stream — but it IS part of the
  // class identity: different bits corrupt different values.
  std::optional<EquivInterval> IntervalOf(const target::FaultTarget& target,
                                          std::uint64_t time) const;

  std::uint64_t end_time() const { return end_time_; }

  // Interval counts, for reporting.
  std::size_t register_interval_count() const;
  std::size_t memory_interval_count() const;

 private:
  const std::vector<EquivInterval>* IntervalsFor(
      const target::FaultTarget& target) const;

  std::vector<EquivInterval> reg_intervals_[16];
  std::map<std::uint32_t, std::vector<EquivInterval>> mem_intervals_;
  std::uint64_t end_time_ = 0;
};

// ---- class identity ----------------------------------------------------
// Classes persist in LoggedSystemState.equiv_class as a self-describing
// id "<location>:b<bit>:[<lo>,<hi>]" so the analysis stage can weight
// outcomes and the crosscheck can enumerate every member without
// rebuilding the partition.
struct EquivalenceClassKey {
  target::FaultTarget target;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  std::uint64_t weight() const { return hi - lo + 1; }
};

std::string EquivalenceClassId(const target::FaultTarget& target,
                               std::uint64_t lo, std::uint64_t hi);
Result<EquivalenceClassKey> ParseEquivalenceClassId(const std::string& id);

}  // namespace goofi::analysis
