#include "analysis/equivalence.h"

#include <algorithm>

#include "util/strings.h"

namespace goofi::analysis {

std::vector<EquivInterval> BuildAccessIntervals(
    const std::vector<sim::AccessEvent>& events) {
  std::vector<EquivInterval> intervals;
  // Events arrive in program order; several may share one time (an
  // instruction reads before it writes). Each distinct access time `a`
  // closes the interval (previous access time, a].
  std::uint64_t next_lo = 0;
  for (const sim::AccessEvent& event : events) {
    if (event.time < next_lo) continue;  // same-time access: already closed
    intervals.push_back({next_lo, event.time});
    next_lo = event.time + 1;
  }
  return intervals;
}

void FaultSpacePartition::Build(const sim::AccessRecorder& recorder,
                                std::uint64_t end_time) {
  end_time_ = end_time;
  for (unsigned reg = 0; reg < 16; ++reg) {
    reg_intervals_[reg] = BuildAccessIntervals(recorder.register_events(reg));
  }
  mem_intervals_.clear();
  for (const auto& [address, events] : recorder.memory_events()) {
    std::vector<EquivInterval> intervals = BuildAccessIntervals(events);
    if (!intervals.empty()) {
      mem_intervals_.emplace(address, std::move(intervals));
    }
  }
}

const std::vector<EquivInterval>* FaultSpacePartition::IntervalsFor(
    const target::FaultTarget& target) const {
  if (StartsWith(target.location, "cpu.regs.r")) {
    const auto reg = ParseUint64(target.location.substr(10));
    if (!reg || *reg == 0 || *reg >= 16) return nullptr;
    return &reg_intervals_[*reg];
  }
  if (StartsWith(target.location, "mem@")) {
    const auto address = ParseUint64(target.location.substr(4));
    if (!address) return nullptr;
    const std::uint32_t byte =
        static_cast<std::uint32_t>(*address) + target.bit / 8;
    const auto it = mem_intervals_.find(byte & ~3u);
    return it == mem_intervals_.end() ? nullptr : &it->second;
  }
  return nullptr;
}

std::optional<EquivInterval> FaultSpacePartition::IntervalOf(
    const target::FaultTarget& target, std::uint64_t time) const {
  const std::vector<EquivInterval>* intervals = IntervalsFor(target);
  if (intervals == nullptr || intervals->empty()) return std::nullopt;
  // Binary search the sorted, contiguous partition.
  std::size_t lo = 0;
  std::size_t hi = intervals->size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if ((*intervals)[mid].hi < time) {
      lo = mid + 1;
    } else if ((*intervals)[mid].lo > time) {
      hi = mid;
    } else {
      return (*intervals)[mid];
    }
  }
  return std::nullopt;  // past the last access: the fault is never read
}

std::size_t FaultSpacePartition::register_interval_count() const {
  std::size_t count = 0;
  for (unsigned reg = 1; reg < 16; ++reg) count += reg_intervals_[reg].size();
  return count;
}

std::size_t FaultSpacePartition::memory_interval_count() const {
  std::size_t count = 0;
  for (const auto& [address, intervals] : mem_intervals_) {
    (void)address;
    count += intervals.size();
  }
  return count;
}

std::string EquivalenceClassId(const target::FaultTarget& target,
                               std::uint64_t lo, std::uint64_t hi) {
  return StrFormat("%s:b%u:[%llu,%llu]", target.location.c_str(), target.bit,
                   static_cast<unsigned long long>(lo),
                   static_cast<unsigned long long>(hi));
}

Result<EquivalenceClassKey> ParseEquivalenceClassId(const std::string& id) {
  // "<location>:b<bit>:[<lo>,<hi>]", parsed from the right because the
  // location may itself contain dots and digits (never ":[" though).
  const std::size_t bracket = id.rfind(":[");
  if (bracket == std::string::npos || id.empty() || id.back() != ']') {
    return InvalidArgumentError("bad equivalence class id '" + id + "'");
  }
  const std::size_t bit_sep = id.rfind(":b", bracket - 1);
  if (bit_sep == std::string::npos || bit_sep + 2 >= bracket) {
    return InvalidArgumentError("bad equivalence class id '" + id + "'");
  }
  const std::string span = id.substr(bracket + 2, id.size() - bracket - 3);
  const std::size_t comma = span.find(',');
  if (comma == std::string::npos) {
    return InvalidArgumentError("bad equivalence class id '" + id + "'");
  }
  const auto bit = ParseUint64(id.substr(bit_sep + 2, bracket - bit_sep - 2));
  const auto lo = ParseUint64(span.substr(0, comma));
  const auto hi = ParseUint64(span.substr(comma + 1));
  if (!bit || !lo || !hi || *lo > *hi) {
    return InvalidArgumentError("bad equivalence class id '" + id + "'");
  }
  EquivalenceClassKey key;
  key.target.location = id.substr(0, bit_sep);
  key.target.bit = static_cast<std::uint32_t>(*bit);
  key.lo = *lo;
  key.hi = *hi;
  if (key.target.location.empty()) {
    return InvalidArgumentError("bad equivalence class id '" + id + "'");
  }
  return key;
}

}  // namespace goofi::analysis
