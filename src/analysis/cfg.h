// Control-flow graph over an assembled GOOFI-32 image.
//
// The static pre-run analysis (DESIGN.md; motivated by ZOFI's and
// ProFIPy's up-front coverage passes) needs a conservative model of every
// path the workload can execute. Code is discovered by a worklist walk
// from the entry point (and from the `trap_handler` symbol when the
// workload declares one); discovered instructions are partitioned into
// basic blocks with successor edges:
//
//   - conditional branches get both the taken and the fall-through edge,
//     except same-register forms (`beq r0, r0, x` — the assembler's `b`)
//     which are resolved exactly;
//   - JAL is a call edge to its target; return flow is modelled with
//     edges from every `jalr` return to every possible return site
//     (pc+4 of every JAL) — sound whenever the link-register discipline
//     below holds;
//   - JALR with rb = r0 is a direct jump to imm & ~3.
//
// Link-register discipline: a forward dataflow proves that the operand of
// every JALR always holds a value written by some JAL's link write. Then
// every indirect target is one of the known return sites and the return
// edges above cover all real paths. If any JALR can see a value from
// elsewhere (e.g. qsort's `push lr` / `pop lr` spill reloads it from the
// stack), the proof fails for the whole image and every JALR block is
// instead marked `has_indirect_successor`; the dataflow clients widen
// there (all registers live), which keeps the analysis sound at the cost
// of precision.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/assembler.h"
#include "sim/isa.h"
#include "util/status.h"

namespace goofi::analysis {

struct BasicBlock {
  std::uint32_t begin = 0;  // address of the first instruction
  std::uint32_t end = 0;    // address past the last instruction
  std::vector<std::uint32_t> successors;  // begin addresses of successors
  // Ends in a JALR whose target could not be bounded (the link-register
  // discipline proof failed): dataflow clients must widen here.
  bool has_indirect_successor = false;
  // Control can continue past the image (or into undecodable words):
  // also a widening point, and a lintable defect.
  bool falls_off_image = false;
};

class Cfg {
 public:
  // Discovers reachable code and builds blocks. Fails only when the
  // entry point itself is not decodable code.
  static Result<Cfg> Build(const sim::AssembledProgram& program);

  std::uint32_t entry() const { return entry_; }
  const std::map<std::uint32_t, BasicBlock>& blocks() const {
    return blocks_;
  }
  // Reachable instructions keyed by address.
  const std::map<std::uint32_t, sim::Instruction>& instructions() const {
    return instructions_;
  }
  const sim::Instruction* InstructionAt(std::uint32_t pc) const;
  const BasicBlock* BlockContaining(std::uint32_t pc) const;
  bool IsReachable(std::uint32_t pc) const {
    return instructions_.count(pc) != 0;
  }
  // True when the link-register discipline held and JALR returns are
  // modelled with explicit return edges.
  bool returns_resolved() const { return returns_resolved_; }

  // Maximal runs of assembled instructions (per the program's
  // source-line map) that the walk never reached: dead functions and
  // orphaned code. `end` is past the last dead instruction.
  struct DeadRange {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  std::vector<DeadRange> UnreachableCodeRanges(
      const sim::AssembledProgram& program) const;

 private:
  std::uint32_t entry_ = 0;
  bool returns_resolved_ = false;
  std::map<std::uint32_t, sim::Instruction> instructions_;
  std::map<std::uint32_t, BasicBlock> blocks_;
};

}  // namespace goofi::analysis
