#include "analysis/dataflow.h"

#include <algorithm>
#include <array>
#include <iterator>
#include <limits>
#include <utility>

namespace goofi::analysis {
namespace {

using sim::Instruction;
using sim::Opcode;

constexpr std::uint16_t kAllButR0 = 0xfffe;

std::map<std::uint32_t, std::vector<std::uint32_t>> Predecessors(
    const Cfg& cfg) {
  std::map<std::uint32_t, std::vector<std::uint32_t>> preds;
  for (const auto& [begin, block] : cfg.blocks()) {
    for (const std::uint32_t successor : block.successors) {
      preds[successor].push_back(begin);
    }
  }
  return preds;
}

// Forward-analysis entry blocks: the program entry plus every block no
// edge reaches (the trap handler, and return sites the final edge model
// dropped). Non-entry roots start from the widened "anything" state.
std::vector<std::uint32_t> RootBlocks(
    const Cfg& cfg,
    const std::map<std::uint32_t, std::vector<std::uint32_t>>& preds) {
  std::vector<std::uint32_t> roots{cfg.entry()};
  for (const auto& [begin, block] : cfg.blocks()) {
    (void)block;
    if (begin != cfg.entry() && preds.find(begin) == preds.end()) {
      roots.push_back(begin);
    }
  }
  return roots;
}

}  // namespace

LivenessResult ComputeLiveness(const Cfg& cfg) {
  const auto preds = Predecessors(cfg);
  std::map<std::uint32_t, std::uint16_t> block_live_in;

  const auto live_out = [&](const BasicBlock& block) {
    if (block.has_indirect_successor || block.falls_off_image) {
      return kAllButR0;
    }
    std::uint16_t out = 0;
    for (const std::uint32_t successor : block.successors) {
      const auto it = block_live_in.find(successor);
      if (it != block_live_in.end()) out |= it->second;
    }
    return out;
  };
  const auto block_transfer = [&](const BasicBlock& block,
                                  std::uint16_t state) {
    for (std::uint32_t pc = block.end - 4;; pc -= 4) {
      const sim::RegDefUse du =
          sim::InstructionDefUse(*cfg.InstructionAt(pc));
      state = static_cast<std::uint16_t>(
          ((state & ~du.defs) | du.uses) & kAllButR0);
      if (pc == block.begin) break;
    }
    return state;
  };

  std::vector<std::uint32_t> work;
  for (const auto& [begin, block] : cfg.blocks()) {
    (void)block;
    work.push_back(begin);
  }
  while (!work.empty()) {
    const std::uint32_t begin = work.back();
    work.pop_back();
    const BasicBlock& block = cfg.blocks().at(begin);
    const std::uint16_t in = block_transfer(block, live_out(block));
    auto& current = block_live_in[begin];
    if (in == current) continue;
    current = in;  // monotone: only grows
    const auto it = preds.find(begin);
    if (it != preds.end()) {
      work.insert(work.end(), it->second.begin(), it->second.end());
    }
  }

  LivenessResult result;
  for (const auto& [begin, block] : cfg.blocks()) {
    (void)begin;
    std::uint16_t state = live_out(block);
    for (std::uint32_t pc = block.end - 4;; pc -= 4) {
      const sim::RegDefUse du =
          sim::InstructionDefUse(*cfg.InstructionAt(pc));
      state = static_cast<std::uint16_t>(
          ((state & ~du.defs) | du.uses) & kAllButR0);
      result.live_in[pc] = state;
      result.ever_live |= state;
      if (pc == block.begin) break;
    }
  }
  return result;
}

namespace {

using UseSet = FirstUseResult::UseSet;
using UseState = std::array<UseSet, 16>;

UseSet WidenedUseSet() {
  UseSet set;
  set.unknown = true;
  return set;
}

bool SameUseSet(const UseSet& a, const UseSet& b) {
  return a.unknown == b.unknown && a.pcs == b.pcs;
}

// Union with cap: beyond kMaxTrackedUses distinct use sites the set
// widens to unknown, keeping the fixpoint's lattice finite.
void UnionInto(UseSet& into, const UseSet& from) {
  if (into.unknown) return;
  if (from.unknown) {
    into = WidenedUseSet();
    return;
  }
  std::vector<std::uint32_t> merged;
  merged.reserve(into.pcs.size() + from.pcs.size());
  std::set_union(into.pcs.begin(), into.pcs.end(), from.pcs.begin(),
                 from.pcs.end(), std::back_inserter(merged));
  if (merged.size() > FirstUseResult::kMaxTrackedUses) {
    into = WidenedUseSet();
  } else {
    into.pcs = std::move(merged);
  }
}

// Backward per-instruction transfer: a read of `reg` at pc makes pc the
// first use (reads happen before the same instruction's write); a pure
// write kills the set (the incoming value is never read on this path).
void FirstUseTransfer(const Cfg& cfg, const BasicBlock& block,
                      UseState& state,
                      std::map<std::uint32_t, UseState>* per_pc) {
  for (std::uint32_t pc = block.end - 4;; pc -= 4) {
    const sim::RegDefUse du = sim::InstructionDefUse(*cfg.InstructionAt(pc));
    for (std::uint8_t reg = 1; reg < 16; ++reg) {
      const std::uint16_t bit = static_cast<std::uint16_t>(1u << reg);
      if ((du.uses & bit) != 0) {
        state[reg] = UseSet{false, {pc}};
      } else if ((du.defs & bit) != 0) {
        state[reg] = UseSet{};
      }
    }
    if (per_pc != nullptr) (*per_pc)[pc] = state;
    if (pc == block.begin) break;
  }
}

}  // namespace

bool FirstUseResult::UseSet::Contains(std::uint32_t pc) const {
  return unknown || std::binary_search(pcs.begin(), pcs.end(), pc);
}

bool FirstUseResult::MayFirstUseAt(std::uint8_t reg, std::uint32_t def_pc,
                                   std::uint32_t use_pc) const {
  if (reg == 0 || reg >= 16) return true;  // unmodeled: stay conservative
  const auto it = first_use_in.find(def_pc);
  if (it == first_use_in.end()) return true;  // pc the Cfg never decoded
  return it->second[reg].Contains(use_pc);
}

FirstUseResult ComputeFirstUses(const Cfg& cfg) {
  const auto preds = Predecessors(cfg);
  std::map<std::uint32_t, UseState> block_in;

  // Widening points match ComputeLiveness: past an indirect branch or
  // off the decoded image, any instruction may consume the value.
  const auto first_use_out = [&](const BasicBlock& block) {
    UseState out;
    if (block.has_indirect_successor || block.falls_off_image) {
      for (std::uint8_t reg = 1; reg < 16; ++reg) out[reg] = WidenedUseSet();
      return out;
    }
    for (const std::uint32_t successor : block.successors) {
      const auto it = block_in.find(successor);
      if (it == block_in.end()) continue;
      for (std::uint8_t reg = 1; reg < 16; ++reg) {
        UnionInto(out[reg], it->second[reg]);
      }
    }
    return out;
  };

  std::vector<std::uint32_t> work;
  for (const auto& [begin, block] : cfg.blocks()) {
    (void)block;
    work.push_back(begin);
  }
  while (!work.empty()) {
    const std::uint32_t begin = work.back();
    work.pop_back();
    const BasicBlock& block = cfg.blocks().at(begin);
    UseState in = first_use_out(block);
    FirstUseTransfer(cfg, block, in, nullptr);
    auto& current = block_in[begin];
    bool changed = false;
    for (std::uint8_t reg = 1; reg < 16; ++reg) {
      if (!SameUseSet(in[reg], current[reg])) {
        changed = true;
        break;
      }
    }
    if (!changed) continue;
    current = in;  // monotone under UnionInto: only grows toward unknown
    const auto it = preds.find(begin);
    if (it != preds.end()) {
      work.insert(work.end(), it->second.begin(), it->second.end());
    }
  }

  FirstUseResult result;
  for (const auto& [begin, block] : cfg.blocks()) {
    (void)begin;
    UseState state = first_use_out(block);
    FirstUseTransfer(cfg, block, state, &result.first_use_in);
  }
  return result;
}

std::vector<MaybeUninitRead> FindMaybeUninitReads(const Cfg& cfg) {
  const auto preds = Predecessors(cfg);
  // Bit set = definitely written on every path here. r0 always counts.
  std::map<std::uint32_t, std::uint16_t> block_in;
  std::vector<std::uint32_t> work;
  for (const std::uint32_t root : RootBlocks(cfg, preds)) {
    block_in[root] = root == cfg.entry() ? 0x0001 : 0xffff;
    work.push_back(root);
  }
  const auto transfer = [&](const BasicBlock& block, std::uint16_t state,
                            std::vector<MaybeUninitRead>* reads) {
    for (std::uint32_t pc = block.begin; pc < block.end; pc += 4) {
      const Instruction& insn = *cfg.InstructionAt(pc);
      const sim::RegDefUse du = sim::InstructionDefUse(insn);
      if (reads != nullptr) {
        std::uint16_t unread = du.uses & static_cast<std::uint16_t>(~state);
        for (std::uint8_t reg = 1; reg < 16; ++reg) {
          if ((unread & (1u << reg)) != 0) reads->push_back({pc, reg});
        }
      }
      state |= du.defs;
      if (insn.opcode == Opcode::kJal && !cfg.returns_resolved()) {
        state = 0xffff;  // fall-through edge stands in for the callee
      }
      state |= 0x0001;
    }
    return state;
  };
  while (!work.empty()) {
    const std::uint32_t begin = work.back();
    work.pop_back();
    const BasicBlock& block = cfg.blocks().at(begin);
    const std::uint16_t out = transfer(block, block_in.at(begin), nullptr);
    for (const std::uint32_t successor : block.successors) {
      const auto it = block_in.find(successor);
      if (it == block_in.end()) {
        block_in[successor] = out;
        work.push_back(successor);
      } else if ((it->second & out) != it->second) {
        it->second &= out;
        work.push_back(successor);
      }
    }
  }
  std::vector<MaybeUninitRead> reads;
  for (const auto& [begin, state] : block_in) {
    transfer(cfg.blocks().at(begin), state, &reads);
  }
  return reads;
}

namespace {

// Constant-propagation state: one known value per register, r0 pinned
// to zero. nullopt = not a compile-time constant on some path.
using ConstState = std::array<std::optional<std::uint32_t>, 16>;

ConstState UnknownState() {
  ConstState state;
  state[0] = 0;
  return state;
}

// Meets `from` into `into`; true when `into` changed.
bool MeetInto(ConstState& into, const ConstState& from) {
  bool changed = false;
  for (std::size_t reg = 1; reg < 16; ++reg) {
    if (into[reg].has_value() &&
        (!from[reg].has_value() || *from[reg] != *into[reg])) {
      into[reg].reset();
      changed = true;
    }
  }
  return changed;
}

std::optional<std::uint32_t> EvalAlu(Opcode opcode, std::uint32_t b,
                                     std::uint32_t c) {
  switch (opcode) {
    case Opcode::kAdd: case Opcode::kAddi: return b + c;
    case Opcode::kSub: return b - c;
    case Opcode::kMul: return b * c;
    case Opcode::kDiv: {
      const auto sb = static_cast<std::int32_t>(b);
      const auto sc = static_cast<std::int32_t>(c);
      if (sc == 0 ||
          (sb == std::numeric_limits<std::int32_t>::min() && sc == -1)) {
        return std::nullopt;  // EDM trap path; value never flows on
      }
      return static_cast<std::uint32_t>(sb / sc);
    }
    case Opcode::kAnd: case Opcode::kAndi: return b & c;
    case Opcode::kOr: case Opcode::kOri: return b | c;
    case Opcode::kXor: case Opcode::kXori: return b ^ c;
    case Opcode::kSll: case Opcode::kSlli: return b << (c & 31);
    case Opcode::kSrl: case Opcode::kSrli: return b >> (c & 31);
    case Opcode::kSra: case Opcode::kSrai:
      return static_cast<std::uint32_t>(static_cast<std::int32_t>(b) >>
                                        (c & 31));
    case Opcode::kSlt: case Opcode::kSlti:
      return static_cast<std::uint32_t>(static_cast<std::int32_t>(b) <
                                        static_cast<std::int32_t>(c));
    case Opcode::kSltu:
      return static_cast<std::uint32_t>(b < c);
    default:
      return std::nullopt;
  }
}

}  // namespace

MemorySummary ComputeMemorySummary(const Cfg& cfg) {
  const auto preds = Predecessors(cfg);
  std::map<std::uint32_t, ConstState> block_in;
  std::vector<std::uint32_t> work;
  for (const std::uint32_t root : RootBlocks(cfg, preds)) {
    ConstState seed = UnknownState();
    if (root == cfg.entry()) {
      // Registers reset to zero, but targets may preload state before
      // releasing the CPU; only r0 is assumed. Workloads build their
      // pointers from LUI/ADDI chains anyway.
    }
    block_in.emplace(root, seed);
    work.push_back(root);
  }

  MemorySummary summary;
  const auto transfer = [&](const BasicBlock& block, ConstState state,
                            MemorySummary* out) {
    for (std::uint32_t pc = block.begin; pc < block.end; pc += 4) {
      const Instruction& insn = *cfg.InstructionAt(pc);
      switch (insn.opcode) {
        case Opcode::kLui:
          state[insn.ra] = static_cast<std::uint32_t>(insn.imm) << 16;
          break;
        case Opcode::kLd: case Opcode::kLdb:
        case Opcode::kSt: case Opcode::kStb: {
          const bool is_store = insn.opcode == Opcode::kSt ||
                                insn.opcode == Opcode::kStb;
          const bool is_byte = insn.opcode == Opcode::kLdb ||
                               insn.opcode == Opcode::kStb;
          std::optional<std::uint32_t> address;
          if (state[insn.rb].has_value()) {
            address = *state[insn.rb] + static_cast<std::uint32_t>(insn.imm);
          }
          if (out != nullptr) {
            out->accesses[pc] = MemoryAccess{pc, is_store, is_byte, address};
            // STB reads the word it partially overwrites.
            const bool reads = !is_store || insn.opcode == Opcode::kStb;
            const bool writes = is_store;
            if (address.has_value()) {
              const std::uint32_t word = *address & ~3u;
              if (reads) out->read_words.insert(word);
              if (writes) out->written_words.insert(word);
            } else {
              if (reads) out->has_unknown_load = true;
              if (writes) out->has_unknown_store = true;
            }
          }
          if (!is_store) state[insn.ra].reset();
          break;
        }
        case Opcode::kJal:
          if (cfg.returns_resolved()) {
            state[insn.ra] = pc + 4;
          } else {
            state = UnknownState();  // edge stands in for the callee
          }
          break;
        case Opcode::kJalr:
          state[insn.ra] = pc + 4;
          break;
        default:
          if (sim::IsRType(insn.opcode) ||
              (sim::InstructionDefUse(insn).defs != 0)) {
            const auto& b = state[insn.rb];
            const std::optional<std::uint32_t> c =
                sim::IsRType(insn.opcode)
                    ? state[insn.rc]
                    : std::optional<std::uint32_t>(
                          static_cast<std::uint32_t>(insn.imm));
            state[insn.ra] =
                b.has_value() && c.has_value()
                    ? EvalAlu(insn.opcode, *b, *c)
                    : std::nullopt;
          }
          break;
      }
      state[0] = 0;
    }
    return state;
  };

  while (!work.empty()) {
    const std::uint32_t begin = work.back();
    work.pop_back();
    const BasicBlock& block = cfg.blocks().at(begin);
    const ConstState out = transfer(block, block_in.at(begin), nullptr);
    for (const std::uint32_t successor : block.successors) {
      const auto it = block_in.find(successor);
      if (it == block_in.end()) {
        block_in.emplace(successor, out);
        work.push_back(successor);
      } else if (MeetInto(it->second, out)) {
        work.push_back(successor);
      }
    }
  }
  for (const auto& [begin, state] : block_in) {
    transfer(cfg.blocks().at(begin), state, &summary);
  }
  return summary;
}

}  // namespace goofi::analysis
