// goofi-lint: static checks for workload assembly, .workload specs and
// campaign definition files, with file:line diagnostics suitable for CI
// (examples/goofi_lint.cpp is the command-line front-end).
//
// The linter reuses the analysis subsystem's CFG/dataflow results for
// the code-level checks and the target layer's reachability rules
// (target::TechniqueCanReach) for the campaign-level ones, so a lint
// clean bill of health means "the campaign machinery will accept this
// and every reachable instruction is accounted for".
#pragma once

#include <string>
#include <vector>

#include "target/fault_injection_algorithms.h"
#include "util/status.h"

namespace goofi::analysis {

struct LintDiagnostic {
  enum class Severity { kWarning, kError };
  Severity severity = Severity::kError;
  std::string file;
  int line = 0;       // 1-based; 0 = whole-file diagnostic
  std::string check;  // stable identifier, e.g. "unreachable-code"
  std::string message;
};

// "file:line: error: message [check]" (line elided when 0).
std::string FormatDiagnostic(const LintDiagnostic& diagnostic);

// The whole batch as one JSON array, one object per diagnostic:
//   [{"file": ..., "line": N, "check": ..., "severity": "error"|"warning",
//     "message": ...}, ...]
// Stable key order, newline after every element, strings escaped; an
// empty batch prints as "[]". For `goofi_lint --format=json` and any
// other machine consumer.
std::string FormatDiagnosticsJson(
    const std::vector<LintDiagnostic>& diagnostics);

// Drops repeats of the same (file, line, check) triple, keeping the
// first occurrence (and its severity/message) and the original order.
// Several checks walk per-instruction state and can report one root
// cause many times; exit codes and CI counts should see it once.
std::vector<LintDiagnostic> DeduplicateDiagnostics(
    std::vector<LintDiagnostic> diagnostics);

bool HasErrors(const std::vector<LintDiagnostic>& diagnostics);

// ---- GOOFI-32 assembly sources ----------------------------------------
// Checks: assembly/label errors (the assembler's own diagnostics,
// re-anchored to file:line), entry decodability, unreachable code,
// control flow running off the image, writes to r0, reads of
// never-written registers, and statically-resolvable memory accesses
// against the board memory map (target/io_map.h).
std::vector<LintDiagnostic> LintWorkloadSource(const std::string& file,
                                               const std::string& source);

// ---- .workload spec files ---------------------------------------------
// Spec-level checks (missing keys, output region vs the memory map,
// unknown environment model) plus LintWorkloadSource over the assembly
// file it references. `file` must be a readable path.
std::vector<LintDiagnostic> LintWorkloadSpecFile(const std::string& file);

// ---- campaign definition files ----------------------------------------
// Checks the [campaign] section: required keys, unknown
// technique/fault-model/logging/trigger values, unknown workload names,
// option combinations the machinery ignores or rejects, and — when
// `locations` is non-null — location filters that select nothing the
// technique can inject into.
//
// Files carrying a [service] section (goofi_serve deployment inis) get
// the daemon's boot-time rules too: fleet_workers/queue_limit >= 1,
// max_campaign_jobs within the fleet, unknown-key warnings. A file with
// only a [service] section is a complete deployment ini and does not
// need a [campaign] section.
std::vector<LintDiagnostic> LintCampaignText(
    const std::string& file, const std::string& text,
    const std::vector<target::TargetSystemInterface::LocationInfo>*
        locations);

}  // namespace goofi::analysis
