#include "analysis/cfg.h"

#include <algorithm>
#include <optional>
#include <set>

#include "util/strings.h"

namespace goofi::analysis {
namespace {

using sim::Instruction;
using sim::Opcode;

std::optional<std::uint32_t> FetchWord(const sim::AssembledProgram& program,
                                       std::uint32_t address) {
  auto it = program.chunks.upper_bound(address);
  if (it == program.chunks.begin()) return std::nullopt;
  --it;
  const std::uint32_t base = it->first;
  const std::vector<std::uint8_t>& bytes = it->second;
  if (address < base || address - base + 4 > bytes.size()) {
    return std::nullopt;
  }
  const std::size_t offset = address - base;
  return static_cast<std::uint32_t>(bytes[offset]) |
         static_cast<std::uint32_t>(bytes[offset + 1]) << 8 |
         static_cast<std::uint32_t>(bytes[offset + 2]) << 16 |
         static_cast<std::uint32_t>(bytes[offset + 3]) << 24;
}

std::uint32_t BranchTarget(std::uint32_t pc, const Instruction& insn) {
  return pc + 4 + static_cast<std::uint32_t>(insn.imm) * 4;
}

bool IsDirectJalr(const Instruction& insn) {
  // jalr with rb = r0 computes imm & ~3 — a direct jump.
  return insn.opcode == Opcode::kJalr && insn.rb == 0;
}

bool EndsBlock(const Instruction& insn) {
  return insn.opcode == Opcode::kHalt || sim::IsBranch(insn.opcode) ||
         sim::IsCall(insn.opcode);
}

// Conditional branches where both operands are the same register are
// decided statically: beq/bge/bgeu always take, bne/blt/bltu never do.
enum class BranchShape { kConditional, kAlwaysTaken, kNeverTaken };

BranchShape ShapeOf(const Instruction& insn) {
  if (insn.ra != insn.rb) return BranchShape::kConditional;
  switch (insn.opcode) {
    case Opcode::kBeq:
    case Opcode::kBge:
    case Opcode::kBgeu:
      return BranchShape::kAlwaysTaken;
    default:
      return BranchShape::kNeverTaken;
  }
}

// Instruction-level control successors, before return-edge modelling.
// JAL includes its fall-through here so discovery covers every possible
// return site; the block-level edges below re-decide that per model.
std::vector<std::uint32_t> DiscoverySuccessors(std::uint32_t pc,
                                               const Instruction& insn) {
  switch (insn.opcode) {
    case Opcode::kHalt:
      return {};
    case Opcode::kJal:
      return {BranchTarget(pc, insn), pc + 4};
    case Opcode::kJalr:
      if (IsDirectJalr(insn)) {
        return {static_cast<std::uint32_t>(insn.imm) & ~3u};
      }
      return {};
    default:
      if (sim::IsBranch(insn.opcode)) {
        switch (ShapeOf(insn)) {
          case BranchShape::kAlwaysTaken:
            return {BranchTarget(pc, insn)};
          case BranchShape::kNeverTaken:
            return {pc + 4};
          case BranchShape::kConditional:
            return {BranchTarget(pc, insn), pc + 4};
        }
      }
      return {pc + 4};
  }
}

}  // namespace

const sim::Instruction* Cfg::InstructionAt(std::uint32_t pc) const {
  const auto it = instructions_.find(pc);
  return it == instructions_.end() ? nullptr : &it->second;
}

const BasicBlock* Cfg::BlockContaining(std::uint32_t pc) const {
  auto it = blocks_.upper_bound(pc);
  if (it == blocks_.begin()) return nullptr;
  --it;
  return pc < it->second.end ? &it->second : nullptr;
}

Result<Cfg> Cfg::Build(const sim::AssembledProgram& program) {
  Cfg cfg;
  cfg.entry_ = program.entry;

  // ---- discovery --------------------------------------------------------
  std::vector<std::uint32_t> worklist{program.entry};
  const auto handler = program.symbols.find("trap_handler");
  if (handler != program.symbols.end()) worklist.push_back(handler->second);
  while (!worklist.empty()) {
    const std::uint32_t pc = worklist.back();
    worklist.pop_back();
    if (cfg.instructions_.count(pc) != 0) continue;
    const auto word = FetchWord(program, pc);
    if (!word.has_value()) continue;  // off the image: widened later
    const auto decoded = sim::Decode(*word);
    if (!decoded.ok()) continue;  // data reached as code: widened later
    cfg.instructions_.emplace(pc, *decoded);
    for (const std::uint32_t successor : DiscoverySuccessors(pc, *decoded)) {
      worklist.push_back(successor);
    }
  }
  if (cfg.instructions_.count(program.entry) == 0) {
    return InvalidArgumentError(StrFormat(
        "entry point 0x%08x is not decodable code", program.entry));
  }

  // ---- leaders and return sites ----------------------------------------
  std::vector<std::uint32_t> return_sites;
  std::set<std::uint32_t> leaders{program.entry};
  if (handler != program.symbols.end() &&
      cfg.instructions_.count(handler->second) != 0) {
    leaders.insert(handler->second);
  }
  for (const auto& [pc, insn] : cfg.instructions_) {
    if (insn.opcode == Opcode::kJal &&
        cfg.instructions_.count(pc + 4) != 0) {
      return_sites.push_back(pc + 4);
    }
    if (EndsBlock(insn)) {
      for (const std::uint32_t successor : DiscoverySuccessors(pc, insn)) {
        if (cfg.instructions_.count(successor) != 0) {
          leaders.insert(successor);
        }
      }
      if (cfg.instructions_.count(pc + 4) != 0) leaders.insert(pc + 4);
    } else if (cfg.instructions_.count(pc + 4) == 0) {
      // The straight-line run ends here; anything after is a new block.
    }
  }
  for (const std::uint32_t site : return_sites) leaders.insert(site);

  // ---- block construction (two models) ---------------------------------
  const auto build_blocks = [&](bool resolve_returns) {
    cfg.blocks_.clear();
    for (auto it = cfg.instructions_.begin();
         it != cfg.instructions_.end();) {
      BasicBlock block;
      block.begin = it->first;
      std::uint32_t last_pc = it->first;
      const Instruction* last = &it->second;
      ++it;
      while (it != cfg.instructions_.end() && it->first == last_pc + 4 &&
             leaders.count(it->first) == 0 && !EndsBlock(*last)) {
        last_pc = it->first;
        last = &it->second;
        ++it;
      }
      block.end = last_pc + 4;

      std::vector<std::uint32_t> raw;
      if (last->opcode == Opcode::kJal) {
        raw.push_back(BranchTarget(last_pc, *last));
        // Without resolved returns the callee's exit is unmodelled, so
        // keep the fall-through edge as the (fictional but conservative)
        // return path; with return edges it is redundant and imprecise.
        if (!resolve_returns) raw.push_back(last_pc + 4);
      } else if (last->opcode == Opcode::kJalr) {
        if (IsDirectJalr(*last)) {
          raw.push_back(static_cast<std::uint32_t>(last->imm) & ~3u);
        } else if (resolve_returns) {
          raw = return_sites;
        } else {
          block.has_indirect_successor = true;
        }
      } else if (last->opcode != Opcode::kHalt) {
        raw = DiscoverySuccessors(last_pc, *last);
      }
      for (const std::uint32_t successor : raw) {
        if (cfg.instructions_.count(successor) != 0) {
          block.successors.push_back(successor);
        } else {
          block.falls_off_image = true;
        }
      }
      cfg.blocks_.emplace(block.begin, std::move(block));
    }
  };

  // ---- link-register discipline ----------------------------------------
  // Forward dataflow over the return-edge model: a register bit is set
  // when the register definitely holds a JAL link value. Meet is AND.
  const auto discipline_holds = [&]() {
    std::map<std::uint32_t, std::uint16_t> in_state;
    in_state[program.entry] = 0;
    if (handler != program.symbols.end()) in_state[handler->second] = 0;
    std::vector<std::uint32_t> work{program.entry};
    if (handler != program.symbols.end()) {
      work.push_back(handler->second);
    }
    const auto transfer = [&](const BasicBlock& block, std::uint16_t state,
                              bool* ok) {
      for (std::uint32_t pc = block.begin; pc < block.end; pc += 4) {
        const Instruction& insn = cfg.instructions_.at(pc);
        if (insn.opcode == Opcode::kJalr && !IsDirectJalr(insn) &&
            (state & (1u << insn.rb)) == 0) {
          *ok = false;
        }
        const sim::RegDefUse du = sim::InstructionDefUse(insn);
        state &= static_cast<std::uint16_t>(~du.defs);
        if (insn.opcode == Opcode::kJal) {
          state |= static_cast<std::uint16_t>((1u << insn.ra) & 0xfffeu);
        }
      }
      return state;
    };
    bool ok = true;
    while (!work.empty() && ok) {
      const std::uint32_t begin = work.back();
      work.pop_back();
      const BasicBlock& block = cfg.blocks_.at(begin);
      const std::uint16_t out = transfer(block, in_state.at(begin), &ok);
      for (const std::uint32_t successor : block.successors) {
        const auto it = in_state.find(successor);
        if (it == in_state.end()) {
          in_state[successor] = out;
          work.push_back(successor);
        } else if ((it->second & out) != it->second) {
          it->second &= out;
          work.push_back(successor);
        }
      }
    }
    return ok;
  };

  build_blocks(/*resolve_returns=*/true);
  if (discipline_holds()) {
    cfg.returns_resolved_ = true;
  } else {
    // Some JALR may see a link value from outside a JAL (a stack spill,
    // computed address, ...): fall back to the widened model everywhere.
    build_blocks(/*resolve_returns=*/false);
  }
  return cfg;
}

std::vector<Cfg::DeadRange> Cfg::UnreachableCodeRanges(
    const sim::AssembledProgram& program) const {
  std::vector<DeadRange> ranges;
  for (const auto& [address, line] : program.source_lines) {
    (void)line;
    if (IsReachable(address)) continue;
    if (!ranges.empty() && ranges.back().end == address) {
      ranges.back().end = address + 4;
    } else {
      ranges.push_back({address, address + 4});
    }
  }
  return ranges;
}

}  // namespace goofi::analysis
