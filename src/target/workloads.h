// Built-in GOOFI-32 workloads and the .workload file loader.
//
// The paper's campaigns run small benchmark programs on the target
// ("the workload and initial input data is downloaded to the system");
// this module provides the reproduction's workload set — the classic
// embedded kernels (sorting, matrix multiply, CRC) plus the jet-engine
// PID controller used for the recovery studies — and a loader for
// user-supplied workload definitions (workloads/vector_scale.workload).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "target/target_types.h"
#include "util/status.h"

namespace goofi::target {

struct WorkloadSpec {
  std::string name;
  // GOOFI-32 assembly source (see src/sim/assembler.h); assembled by the
  // target when the workload is loaded.
  std::string assembly;
  // Declared output region: the bytes the analysis stage compares
  // against the fault-free reference. Zero length = no output region.
  std::uint32_t output_base = 0;
  std::uint32_t output_length = 0;
  // Plant model exchanged with at every iteration end; empty = none
  // (see target/environment.h).
  std::string environment;
  // Workload-default termination, used when the experiment spec leaves
  // its own TerminationSpec zero.
  TerminationSpec termination{0, 0};
};

// Names of the built-in workloads, sorted.
std::vector<std::string> BuiltinWorkloadNames();

Result<WorkloadSpec> GetBuiltinWorkload(const std::string& name);

// Load a `.workload` INI file:
//   [workload]
//   name = vector_scale
//   assembly_file = vector_scale.s      ; relative to the .workload file
//   output_base = 0x10200
//   output_length = 68
//   max_instructions = 50000            ; optional
//   max_iterations = 0                  ; optional
//   environment = engine                ; optional
Result<WorkloadSpec> LoadWorkloadSpecFromFile(const std::string& path);

}  // namespace goofi::target
