// Plant models the target's control workloads run against.
//
// The paper's dependability benchmark is a jet-engine controller whose
// environment (the engine) must be simulated on the host: every
// iteration the workload reads sensor values from the IO IN page and
// writes actuator commands to the IO OUT page; the environment model
// advances the plant one step in between. The actuator stream it
// records is what the fail-silence analysis compares against the
// reference run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/memory.h"
#include "util/status.h"

namespace goofi::target {

class Environment {
 public:
  virtual ~Environment() = default;

  virtual const std::string& name() const = 0;

  // Reset the plant state and write the initial sensor values into the
  // IO IN page, before the workload's first iteration.
  virtual void Reset(sim::Memory& memory) = 0;

  // One exchange at an iteration boundary: read the actuator command
  // from the IO OUT page, advance the plant, write the new sensor
  // values to the IO IN page. Returns false to abort the mission.
  virtual bool OnIterationEnd(sim::Memory& memory) = 0;

  // Actuator command observed at each exchange so far.
  virtual const std::vector<std::uint32_t>& outputs() const = 0;

  // Checkpoint support: serialize the plant state into an opaque blob
  // (it rides in sim::Snapshot::extras) and reinstate it. The defaults
  // fit stateless environments — an empty blob that restores to a
  // no-op; stateful models must override both.
  virtual std::vector<std::uint8_t> CaptureState() const { return {}; }
  virtual Status RestoreState(const std::vector<std::uint8_t>& blob);
};

// First-order jet-engine model for the engine_control workloads: the
// shaft speed responds to the actuator (fuel) command against a
// square-wave load disturbance. Fully deterministic.
class EngineEnvironment : public Environment {
 public:
  const std::string& name() const override;
  void Reset(sim::Memory& memory) override;
  bool OnIterationEnd(sim::Memory& memory) override;
  const std::vector<std::uint32_t>& outputs() const override {
    return outputs_;
  }

  std::int32_t speed() const { return speed_; }

  std::vector<std::uint8_t> CaptureState() const override;
  Status RestoreState(const std::vector<std::uint8_t>& blob) override;

 private:
  std::int32_t speed_ = 0;
  std::uint64_t step_ = 0;
  std::vector<std::uint32_t> outputs_;
};

// Factory keyed by WorkloadSpec::environment ("engine").
Result<std::unique_ptr<Environment>> MakeEnvironment(
    const std::string& name);

}  // namespace goofi::target
