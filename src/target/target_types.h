// Value types shared between the fault-injection algorithms, the
// campaign machinery and the concrete targets (DESIGN.md §2,
// src/target).
//
// The vocabulary is the paper's: a *technique* selects one of the three
// fault-injection algorithms of Fig. 2 (SCIFI via the scan chains,
// pre-runtime SWIFI into the downloaded memory image, runtime SWIFI
// through the debug port), an *experiment* names the fault (where, when,
// what model), and an *observation* is the logged system state the
// analysis stage classifies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/debug_unit.h"
#include "sim/edm.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace goofi::target {

// ---------------------------------------------------------------------
// Techniques (paper §2.1: "GOOFI currently supports pre-runtime SWIFI
// and Scan-Chain Implemented Fault Injection").
// ---------------------------------------------------------------------
enum class Technique {
  kScifi,
  kSwifiPreRuntime,
  kSwifiRuntime,
};

const char* TechniqueName(Technique technique);
std::optional<Technique> TechniqueFromName(const std::string& name);

// ---------------------------------------------------------------------
// Fault models (paper §2.1: "transient, permanent and intermittent
// faults").
// ---------------------------------------------------------------------
struct FaultModel {
  enum class Kind {
    kTransientBitFlip,    // single bit flip at injection time
    kIntermittentBitFlip, // re-flips every `period` instructions
    kPermanentStuckAt,    // held at `stuck_to_one` for the rest of the run
  };

  Kind kind = Kind::kTransientBitFlip;
  std::uint64_t period = 0;       // intermittent: instructions between flips
  std::uint32_t occurrences = 0;  // intermittent: number of re-flips (0 = 1)
  bool stuck_to_one = true;       // permanent: stuck-at-1 vs stuck-at-0
};

const char* FaultModelKindName(FaultModel::Kind kind);
std::optional<FaultModel::Kind> FaultModelKindFromName(
    const std::string& name);

// One fault location: a named state element (scan-chain element,
// register, or "mem@0xADDRESS" for a memory byte) and a bit within it.
struct FaultTarget {
  std::string location;
  std::uint32_t bit = 0;
};

// When to stop an experiment regardless of the workload's own behaviour
// (the paper's tool-level timeout). Zero means "use the workload's
// default" (and ultimately a global budget).
struct TerminationSpec {
  std::uint64_t max_instructions = 0;
  std::uint64_t max_iterations = 0;
};

// Paper §3.3: normal logging records the final system state only;
// detail mode additionally captures the internal scan chain after every
// instruction ("the state ... is logged after each instruction").
enum class LoggingMode {
  kNormal,
  kDetail,
};

// ---------------------------------------------------------------------
// One fault-injection experiment (a row-to-be in LoggedSystemState).
// ---------------------------------------------------------------------
struct ExperimentSpec {
  std::string name;
  Technique technique = Technique::kScifi;
  // The injection trigger: the experiment runs until this breakpoint
  // fires, then the fault is injected. Defaults to "instret >= 0",
  // i.e. inject before the first instruction.
  sim::Breakpoint trigger;
  std::vector<FaultTarget> targets;  // >1 entries = multiple-bit fault
  FaultModel model;
  TerminationSpec termination{0, 0};
};

// ---------------------------------------------------------------------
// The logged system state of one run (reference or experiment).
// ---------------------------------------------------------------------
struct Observation {
  sim::StopReason stop_reason = sim::StopReason::kHalted;
  std::uint64_t instructions = 0;
  std::uint64_t iterations = 0;
  std::uint64_t recovery_count = 0;
  bool fault_was_injected = false;
  // Words the test card's exchange chain had to retry on the host link
  // during this run (TestCard link-level fault recovery). 0 on a clean
  // link; serialized only when nonzero so fault-free observations keep
  // their historical text form.
  std::uint64_t link_words_retried = 0;
  // First error-detection event, when the run stopped on one.
  std::optional<sim::EdmEvent> edm;
  // Final image of each scan chain, keyed by chain name.
  std::map<std::string, BitVector> chain_images;
  // Raw bytes of the workload's declared output region.
  std::vector<std::uint8_t> output_region;
  // Values the workload emitted with SYS 4.
  std::vector<std::uint32_t> emitted;
  // Actuator values the environment model observed, one per iteration.
  std::vector<std::uint32_t> env_outputs;
  // Detail mode only: (time, internal-chain image) per retired
  // instruction.
  std::vector<std::pair<std::uint64_t, BitVector>> detail_trace;

  // Round-trippable text form, stored in LoggedSystemState.stateVector.
  std::string Serialize() const;
  static Result<Observation> Deserialize(const std::string& text);
};

}  // namespace goofi::target
