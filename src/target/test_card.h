// The simulated fault-injection test card.
//
// In the paper, GOOFI talks to the Thor chip through a physical test
// card ("GOOFI ... is connected to the target system via a test card")
// that owns the JTAG TAP access, the debug port and the program
// download path. This class is that card for the simulated board: every
// host<->target byte goes through it, so it is the single place where
// transport cost and transport faults live. The link is parity-checked
// with retry — injectable link faults are detected and retried, never
// silently corrupted — which is what lets the conformance suite show
// the algorithms are independent of link quality.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/assembler.h"
#include "sim/cpu.h"
#include "sim/debug_unit.h"
#include "sim/scan_chain.h"
#include "sim/tap.h"
#include "util/rng.h"
#include "util/status.h"

namespace goofi::target {

struct LinkStats {
  std::uint64_t commands = 0;           // host->card operations
  std::uint64_t bytes_transferred = 0;  // payload bytes incl. retries
  std::uint64_t words_retried = 0;      // link parity errors recovered
  std::uint64_t latency_micros = 0;     // accumulated transport latency
};

struct TestCardOptions {
  sim::CpuConfig cpu_config;
  // Injectable link imperfections: each transferred word is corrupted
  // with this probability (detected by link parity and retried), and
  // each command costs this much extra latency.
  double link_fault_probability = 0.0;
  std::uint32_t link_latency_micros = 0;
  std::uint64_t link_fault_seed = 0x90F1;
};

class TestCard {
 public:
  TestCard() : TestCard(TestCardOptions{}) {}
  explicit TestCard(TestCardOptions options);

  // Map the board memory (target/io_map.h) and wire up the TAP. Safe to
  // call repeatedly; later calls just reset the target.
  Status Initialize();
  bool initialized() const { return initialized_; }

  sim::Cpu& cpu() { return cpu_; }
  const sim::Cpu& cpu() const { return cpu_; }
  const sim::ScanChainSet& chains() const { return chains_; }
  sim::TapController& tap() { return tap_; }
  const TestCardOptions& options() const { return options_; }
  const LinkStats& link_stats() const { return link_stats_; }
  void ResetLinkStats() { link_stats_ = LinkStats{}; }

  // ------------------------------------------------------------------
  // Debug-port operations.
  // ------------------------------------------------------------------

  // Hard reset; execution will start from `entry`. Clears breakpoints.
  void ResetTarget(std::uint32_t entry);

  // Program download: unchecked pokes, bypassing write protection.
  Status LoadProgram(const sim::AssembledProgram& program);

  // Checked word access to target memory through the debug port.
  Status WriteWord(std::uint32_t address, std::uint32_t value);
  Result<std::uint32_t> ReadWord(std::uint32_t address);
  Result<std::vector<std::uint8_t>> DumpMemory(std::uint32_t address,
                                               std::uint32_t length);
  // Unchecked single-bit flip (bit 0..7 of the addressed byte).
  Status FlipMemoryBit(std::uint32_t address, std::uint32_t bit);

  int SetBreakpoint(const sim::Breakpoint& breakpoint);
  void ClearBreakpoints();

  // Run the target until a stop condition (sim::Run semantics).
  sim::RunResult Run(std::uint64_t max_instructions,
                     std::uint64_t max_iterations = 0,
                     const std::function<bool(sim::Cpu&)>& on_iteration =
                         nullptr);

  // ------------------------------------------------------------------
  // Scan-chain access through the TAP controller.
  // ------------------------------------------------------------------
  Result<BitVector> ReadChain(const std::string& chain_name);
  // Shift `image` in (applying it) and return what was shifted out.
  Result<BitVector> ExchangeChain(const std::string& chain_name,
                                  const BitVector& image);

 private:
  Result<sim::TapInstruction> ChainInstruction(
      const std::string& chain_name) const;
  // Account one host<->card transfer of `bytes` payload bytes.
  void Transfer(std::size_t bytes);

  TestCardOptions options_;
  sim::Cpu cpu_;
  sim::ScanChainSet chains_;
  sim::TapController tap_;
  sim::DebugUnit debug_unit_;
  Rng link_rng_;
  LinkStats link_stats_;
  bool initialized_ = false;
};

}  // namespace goofi::target
