// Target factories: mint fresh, fully independent target instances on
// demand.
//
// The paper's tool owns exactly one target system (a physical board on
// a test card). Our targets are simulated in-process, so nothing stops
// a campaign from running against N of them at once — each parallel
// campaign worker (core/parallel_runner.h) asks the factory for its own
// instance and drives it without any sharing: own test card, own CPU
// and scan chains, and — once a workload naming a plant model is
// installed — own environment (target/environment.h). Workload
// installation stays per instance, exactly as SetWorkload on a single
// target.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "target/fault_injection_algorithms.h"
#include "util/status.h"

namespace goofi::target {

// Every call returns a brand-new instance sharing no mutable state with
// any previous one. Factories must be safe to call from the thread that
// owns the resulting instance (workers call them during start-up).
using TargetFactory =
    std::function<Result<std::unique_ptr<TargetSystemInterface>>()>;

// Factory for the targets shipped in the target layer: "thor_rd" (the
// rad-hard board), "thor" (the commercial variant) and "framework" (the
// Fig. 3 porting skeleton). Unknown names are a NotFound error at
// factory-construction time, not at first use.
Result<TargetFactory> BuiltinTargetFactory(const std::string& target_name);

// Wrap `factory` so every minted instance also gets `workload`
// installed (a per-worker copy; targets assemble their own image from
// it). This is the hook the sharded campaign runner uses to give each
// worker a ready-to-run target.
TargetFactory WithWorkload(TargetFactory factory, WorkloadSpec workload);

}  // namespace goofi::target
