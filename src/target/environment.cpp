#include "target/environment.h"

#include <algorithm>

#include "target/io_map.h"

namespace goofi::target {
namespace {

constexpr std::int32_t kInitialSpeed = 300;
constexpr std::int32_t kBaseLoad = 200;
constexpr std::int32_t kLoadSwing = 150;  // square-wave disturbance
constexpr std::int32_t kMaxSpeed = 4095;

std::uint32_t PeekIoWord(sim::Memory& memory, std::uint32_t offset) {
  std::uint32_t value = 0;
  (void)memory.PeekWord(kIoBase + offset, &value);
  return value;
}

}  // namespace

const std::string& EngineEnvironment::name() const {
  static const std::string kName = "engine";
  return kName;
}

void EngineEnvironment::Reset(sim::Memory& memory) {
  speed_ = kInitialSpeed;
  step_ = 0;
  outputs_.clear();
  (void)memory.PokeWord(kIoBase + kIoInOffset,
                        static_cast<std::uint32_t>(speed_));
  (void)memory.PokeWord(kIoBase + kIoOutOffset, 0);
  (void)memory.PokeWord(kIoBase + kIoIterOffset, 0);
}

bool EngineEnvironment::OnIterationEnd(sim::Memory& memory) {
  const std::uint32_t actuator = PeekIoWord(memory, kIoOutOffset);
  outputs_.push_back(actuator);
  ++step_;

  // Square-wave load: alternates every 8 iterations, so the controller
  // keeps getting re-excited over the 40-iteration mission.
  const std::int32_t load =
      kBaseLoad + ((step_ / 8) % 2 == 0 ? 0 : kLoadSwing);
  // First-order shaft dynamics, integer arithmetic for determinism.
  const std::int32_t thrust =
      static_cast<std::int32_t>(actuator & 0xffff) - load - speed_ / 8;
  speed_ += thrust / 4;
  speed_ = std::clamp(speed_, 0, kMaxSpeed);

  (void)memory.PokeWord(kIoBase + kIoInOffset,
                        static_cast<std::uint32_t>(speed_));
  (void)memory.PokeWord(kIoBase + kIoIterOffset,
                        static_cast<std::uint32_t>(step_));
  return true;
}

Result<std::unique_ptr<Environment>> MakeEnvironment(
    const std::string& name) {
  if (name == "engine") {
    return std::unique_ptr<Environment>(new EngineEnvironment());
  }
  return NotFoundError("no environment model named '" + name + "'");
}

}  // namespace goofi::target
