#include "target/environment.h"

#include <algorithm>

#include "target/io_map.h"

namespace goofi::target {
namespace {

constexpr std::int32_t kInitialSpeed = 300;
constexpr std::int32_t kBaseLoad = 200;
constexpr std::int32_t kLoadSwing = 150;  // square-wave disturbance
constexpr std::int32_t kMaxSpeed = 4095;

std::uint32_t PeekIoWord(sim::Memory& memory, std::uint32_t offset) {
  std::uint32_t value = 0;
  (void)memory.PeekWord(kIoBase + offset, &value);
  return value;
}

}  // namespace

const std::string& EngineEnvironment::name() const {
  static const std::string kName = "engine";
  return kName;
}

void EngineEnvironment::Reset(sim::Memory& memory) {
  speed_ = kInitialSpeed;
  step_ = 0;
  outputs_.clear();
  (void)memory.PokeWord(kIoBase + kIoInOffset,
                        static_cast<std::uint32_t>(speed_));
  (void)memory.PokeWord(kIoBase + kIoOutOffset, 0);
  (void)memory.PokeWord(kIoBase + kIoIterOffset, 0);
}

bool EngineEnvironment::OnIterationEnd(sim::Memory& memory) {
  const std::uint32_t actuator = PeekIoWord(memory, kIoOutOffset);
  outputs_.push_back(actuator);
  ++step_;

  // Square-wave load: alternates every 8 iterations, so the controller
  // keeps getting re-excited over the 40-iteration mission.
  const std::int32_t load =
      kBaseLoad + ((step_ / 8) % 2 == 0 ? 0 : kLoadSwing);
  // First-order shaft dynamics, integer arithmetic for determinism.
  const std::int32_t thrust =
      static_cast<std::int32_t>(actuator & 0xffff) - load - speed_ / 8;
  speed_ += thrust / 4;
  speed_ = std::clamp(speed_, 0, kMaxSpeed);

  (void)memory.PokeWord(kIoBase + kIoInOffset,
                        static_cast<std::uint32_t>(speed_));
  (void)memory.PokeWord(kIoBase + kIoIterOffset,
                        static_cast<std::uint32_t>(step_));
  return true;
}

namespace {

void AppendWord64(std::vector<std::uint8_t>* blob, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    blob->push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

std::uint64_t ReadWord64(const std::vector<std::uint8_t>& blob,
                         std::size_t offset) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(blob[offset + i]) << (8 * i);
  }
  return value;
}

}  // namespace

Status Environment::RestoreState(const std::vector<std::uint8_t>& blob) {
  if (!blob.empty()) {
    return UnimplementedError(
        "environment '" + name() + "' does not implement RestoreState");
  }
  return Status::Ok();
}

std::vector<std::uint8_t> EngineEnvironment::CaptureState() const {
  // Little-endian: speed, step, output count, outputs. The IO page the
  // plant exchanges through lives in target memory and is restored with
  // the CPU's memory image, not here.
  std::vector<std::uint8_t> blob;
  AppendWord64(&blob, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(speed_)));
  AppendWord64(&blob, step_);
  AppendWord64(&blob, outputs_.size());
  for (const std::uint32_t output : outputs_) {
    AppendWord64(&blob, output);
  }
  return blob;
}

Status EngineEnvironment::RestoreState(
    const std::vector<std::uint8_t>& blob) {
  if (blob.size() < 24 || blob.size() != 24 + 8 * ReadWord64(blob, 16)) {
    return InvalidArgumentError("malformed engine environment snapshot");
  }
  speed_ = static_cast<std::int32_t>(
      static_cast<std::int64_t>(ReadWord64(blob, 0)));
  step_ = ReadWord64(blob, 8);
  outputs_.clear();
  const std::uint64_t count = ReadWord64(blob, 16);
  outputs_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    outputs_.push_back(
        static_cast<std::uint32_t>(ReadWord64(blob, 24 + 8 * i)));
  }
  return Status::Ok();
}

Result<std::unique_ptr<Environment>> MakeEnvironment(
    const std::string& name) {
  if (name == "engine") {
    return std::unique_ptr<Environment>(new EngineEnvironment());
  }
  return NotFoundError("no environment model named '" + name + "'");
}

}  // namespace goofi::target
