// FlakyTargetFactory: fault injection for the fault injector.
//
// Wraps any TargetFactory so every minted instance forwards to a real
// target but consults a shared, deterministic script before each
// RunExperiment: scripted attempts fail with a transport error (kIo),
// a target fault (kTargetFault) or a *hang* (the call wedges for
// `hang_ms` of wall-clock time before failing — long enough to trip
// the campaign supervisor's watchdog). The script is keyed by
// (experiment index, per-experiment attempt number), never by worker
// or wall clock, so the same script produces the same dispositions in
// serial and sharded runs regardless of scheduling.
//
// This is how the supervision layer (core/supervision.h) is itself
// tested by fault injection, and what `goofi_tool --flaky` and the
// flaky-target-smoke CI job feed the campaign runners.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "target/factory.h"

namespace goofi::target {

enum class FlakyFault {
  kIo,           // transient transport failure: kIo status
  kTargetFault,  // target refused the operation: kTargetFault status
  kHang,         // the host<->test-card link wedges for hang_ms
};

// One shared script steers every instance a flaky factory mints.
// Reference runs and experiments whose (index, attempt) is not
// scripted pass through untouched.
struct FlakyScript {
  // (experiment index, 1-based attempt for that experiment) -> fault.
  std::map<std::pair<std::uint64_t, std::uint32_t>, FlakyFault> faults;
  // Experiments that fail *every* attempt (scripted unrecoverable).
  std::map<std::uint64_t, FlakyFault> always;
  // How long a scripted hang wedges the link. Pick this larger than
  // the campaign's experiment_timeout_ms so the watchdog fires first.
  std::uint64_t hang_ms = 100;

  // Injection counters (across all minted instances and threads).
  std::atomic<std::uint64_t> faults_injected{0};
  std::atomic<std::uint64_t> hangs_injected{0};

  // Per-experiment attempt counters, so retries of experiment i see
  // attempt 2, 3, ... whichever instance or worker runs them.
  std::mutex mutex;
  std::map<std::uint64_t, std::uint32_t> attempts_seen;
};

// Parse a script spec like "io@3;hang@5;target_fault@7:2;io@9:*":
// `<kind>@<experiment>[:<attempt>]`, ';'- or ','-separated. Attempt
// defaults to 1 (the first try); `:*` scripts every attempt. Kinds:
// io, target_fault, hang. Optional `hang_ms=<n>` entry overrides the
// hang duration.
Result<std::shared_ptr<FlakyScript>> ParseFlakyScript(
    const std::string& text);

// The experiment index encoded in a canonical experiment name
// ("<campaign>/exp00042[/detail0]" -> 42); max uint64 when the name
// has none (e.g. the reference run).
std::uint64_t FlakyExperimentIndex(const std::string& experiment_name);

// Wrap `inner` so every minted instance shares `script`.
TargetFactory MakeFlakyTargetFactory(TargetFactory inner,
                                     std::shared_ptr<FlakyScript> script);

}  // namespace goofi::target
