#include "target/cache_target.h"

#include <cstddef>

#include "util/strings.h"

namespace goofi::target {
namespace {

using sim::ArmedCacheFault;
using sim::CacheArray;
using sim::MemUnit;

const char* UnitPrefix(MemUnit unit) {
  return unit == MemUnit::kIcache ? "icache" : "dcache";
}

// Consumes a decimal number at the front of `text`; advances `*pos`.
std::optional<std::uint32_t> EatNumber(const std::string& text,
                                       std::size_t* pos) {
  std::size_t digits = 0;
  std::uint64_t value = 0;
  while (*pos + digits < text.size() &&
         text[*pos + digits] >= '0' && text[*pos + digits] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(
                             text[*pos + digits] - '0');
    if (value > 0xffffffffull) return std::nullopt;
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  *pos += digits;
  return static_cast<std::uint32_t>(value);
}

bool IsMemoryLocation(const std::string& location) {
  return StartsWith(location, "mem@");
}

}  // namespace

const char* CacheFaultModelName(CacheFaultModel model) {
  switch (model) {
    case CacheFaultModel::kDataBit: return "cache_data_bit";
    case CacheFaultModel::kTagBit: return "cache_tag_bit";
    case CacheFaultModel::kParityBit: return "cache_parity_bit";
    case CacheFaultModel::kInflightLoadBit: return "inflight_load_bit";
  }
  return "?";
}

std::optional<CacheFaultModel> CacheFaultModelFromName(
    const std::string& name) {
  if (name == "cache_data_bit") return CacheFaultModel::kDataBit;
  if (name == "cache_tag_bit") return CacheFaultModel::kTagBit;
  if (name == "cache_parity_bit") return CacheFaultModel::kParityBit;
  if (name == "inflight_load_bit") return CacheFaultModel::kInflightLoadBit;
  return std::nullopt;
}

const char* CacheFaultModelLocationGlob(CacheFaultModel model) {
  switch (model) {
    case CacheFaultModel::kDataBit: return "*cache.set*.data";
    case CacheFaultModel::kTagBit: return "*cache.set*.tag";
    case CacheFaultModel::kParityBit: return "*cache.set*.parity";
    case CacheFaultModel::kInflightLoadBit: return "*cache.set*.inflight";
  }
  return "*cache.set*";
}

std::optional<ArmedCacheFault> ParseCacheCoordinate(
    const std::string& name) {
  ArmedCacheFault fault;
  std::size_t pos = 0;
  if (StartsWith(name, "icache.set")) {
    fault.unit = MemUnit::kIcache;
    pos = 10;
  } else if (StartsWith(name, "dcache.set")) {
    fault.unit = MemUnit::kDcache;
    pos = 10;
  } else {
    return std::nullopt;
  }
  const auto set = EatNumber(name, &pos);
  if (!set.has_value()) return std::nullopt;
  fault.set = *set;
  if (name.compare(pos, std::string::npos, ".tag") == 0) {
    fault.array = CacheArray::kTag;
    return fault;
  }
  if (name.compare(pos, 5, ".word") != 0) return std::nullopt;
  pos += 5;
  const auto word = EatNumber(name, &pos);
  if (!word.has_value()) return std::nullopt;
  fault.word = *word;
  if (name.compare(pos, std::string::npos, ".data") == 0) {
    fault.array = CacheArray::kData;
  } else if (name.compare(pos, std::string::npos, ".parity") == 0) {
    fault.array = CacheArray::kParity;
  } else if (name.compare(pos, std::string::npos, ".inflight") == 0) {
    fault.array = CacheArray::kInflight;
  } else {
    return std::nullopt;
  }
  return fault;
}

CacheHierarchyTarget::CacheHierarchyTarget(TestCardOptions options)
    : ThorRdTarget(options, "cache_hierarchy") {
  sim::Cpu& cpu = test_card().cpu();
  cpu.icache().set_fault_injector(&injector_, MemUnit::kIcache);
  cpu.dcache().set_fault_injector(&injector_, MemUnit::kDcache);
  cpu.memory().set_fault_injector(&injector_);
}

std::vector<TargetSystemInterface::LocationInfo>
CacheHierarchyTarget::ListLocations() const {
  std::vector<LocationInfo> locations = ThorRdTarget::ListLocations();
  const sim::Cpu& cpu = test_card().cpu();
  for (const MemUnit unit : {MemUnit::kIcache, MemUnit::kDcache}) {
    const sim::Cache& cache =
        unit == MemUnit::kIcache ? cpu.icache() : cpu.dcache();
    const sim::CacheGeometry& geometry = cache.geometry();
    const char* prefix = UnitPrefix(unit);
    auto add = [&locations](std::string name, std::uint32_t width) {
      LocationInfo info;
      info.kind = LocationInfo::Kind::kScanElement;
      info.name = std::move(name);
      info.chain = "access_path";
      info.width_bits = width;
      info.writable = true;
      info.category = "cache_access_path";
      locations.push_back(std::move(info));
    };
    for (std::uint32_t set = 0; set < geometry.lines; ++set) {
      add(StrFormat("%s.set%u.tag", prefix, set),
          geometry.tag_bits > 32 ? 32 : geometry.tag_bits);
      for (std::uint32_t word = 0; word < geometry.words_per_line; ++word) {
        add(StrFormat("%s.set%u.word%u.data", prefix, set, word), 32);
        add(StrFormat("%s.set%u.word%u.parity", prefix, set, word), 1);
        add(StrFormat("%s.set%u.word%u.inflight", prefix, set, word), 32);
      }
    }
  }
  return locations;
}

Status CacheHierarchyTarget::initTestCard() {
  RETURN_IF_ERROR(ThorRdTarget::initTestCard());
  injector_.Reset();
  return Status::Ok();
}

Result<sim::Snapshot> CacheHierarchyTarget::CaptureSnapshot() {
  ASSIGN_OR_RETURN(sim::Snapshot snapshot,
                   ThorRdTarget::CaptureSnapshot());
  snapshot.injector = injector_.CaptureState();
  return snapshot;
}

Status CacheHierarchyTarget::RestoreSnapshot(
    const sim::Snapshot& snapshot) {
  RETURN_IF_ERROR(ThorRdTarget::RestoreSnapshot(snapshot));
  if (snapshot.injector.has_value()) {
    injector_.RestoreState(*snapshot.injector);
  } else {
    injector_.Reset();
  }
  return Status::Ok();
}

Status CacheHierarchyTarget::ArmCacheFault(ArmedCacheFault coordinate,
                                           const FaultTarget& fault) {
  const sim::Cache& cache = coordinate.unit == MemUnit::kIcache
                                ? test_card().cpu().icache()
                                : test_card().cpu().dcache();
  const sim::CacheGeometry& geometry = cache.geometry();
  if (coordinate.set >= geometry.lines ||
      (coordinate.array != CacheArray::kTag &&
       coordinate.word >= geometry.words_per_line)) {
    return OutOfRangeError(StrFormat(
        "cache coordinate %s is outside the %ux%u geometry",
        fault.location.c_str(), geometry.lines, geometry.words_per_line));
  }
  std::uint32_t width = 32;
  if (coordinate.array == CacheArray::kTag) {
    width = geometry.tag_bits > 32 ? 32 : geometry.tag_bits;
  } else if (coordinate.array == CacheArray::kParity) {
    width = 1;
  }
  if (fault.bit >= width) {
    return OutOfRangeError(StrFormat("bit %u of %u-bit coordinate %s",
                                     fault.bit, width,
                                     fault.location.c_str()));
  }
  coordinate.bit = fault.bit;
  switch (spec_.model.kind) {
    case FaultModel::Kind::kTransientBitFlip:
      coordinate.kind = sim::ArmedFaultKind::kTransient;
      coordinate.remaining = 1;
      break;
    case FaultModel::Kind::kIntermittentBitFlip:
      coordinate.kind = sim::ArmedFaultKind::kIntermittent;
      coordinate.period = spec_.model.period;
      coordinate.remaining =
          spec_.model.occurrences == 0 ? 1 : spec_.model.occurrences;
      break;
    case FaultModel::Kind::kPermanentStuckAt:
      coordinate.kind = sim::ArmedFaultKind::kPermanentStuckAt;
      coordinate.stuck_to_one = spec_.model.stuck_to_one;
      break;
  }
  injector_.Arm(coordinate);
  return Status::Ok();
}

Status CacheHierarchyTarget::injectFault() {
  const bool needs_trigger = spec_.technique != Technique::kSwifiPreRuntime;
  if (needs_trigger && !breakpoint_hit()) return Status::Ok();
  for (const FaultTarget& fault : spec_.targets) {
    const auto coordinate = ParseCacheCoordinate(fault.location);
    if (coordinate.has_value()) {
      if (spec_.technique == Technique::kSwifiPreRuntime) {
        return InvalidArgumentError(
            "cache coordinates are runtime access-path locations: " +
            fault.location);
      }
      RETURN_IF_ERROR(ArmCacheFault(*coordinate, fault));
      continue;
    }
    // Not a cache coordinate: the base target's Fig. 3 dispatch.
    switch (spec_.technique) {
      case Technique::kScifi:
        if (IsMemoryLocation(fault.location)) {
          return InvalidArgumentError(
              "SCIFI reaches scan elements, not memory: " + fault.location);
        }
        RETURN_IF_ERROR(InjectIntoImage(fault));
        break;
      case Technique::kSwifiPreRuntime:
        if (!IsMemoryLocation(fault.location)) {
          return InvalidArgumentError(
              "pre-runtime SWIFI reaches the memory image only: " +
              fault.location);
        }
        RETURN_IF_ERROR(InjectIntoMemory(fault));
        break;
      case Technique::kSwifiRuntime:
        if (IsMemoryLocation(fault.location)) {
          RETURN_IF_ERROR(InjectIntoMemory(fault));
        } else {
          RETURN_IF_ERROR(InjectIntoCpu(fault));
        }
        break;
    }
  }
  observation_.fault_was_injected = !spec_.targets.empty();
  return Status::Ok();
}

std::unique_ptr<CacheHierarchyTarget> MakeCacheHierarchyTarget() {
  return std::make_unique<CacheHierarchyTarget>(TestCardOptions{});
}

}  // namespace goofi::target
