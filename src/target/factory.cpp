#include "target/factory.h"

#include "target/cache_target.h"
#include "target/framework_target.h"
#include "target/thor_rd_target.h"

namespace goofi::target {

Result<TargetFactory> BuiltinTargetFactory(const std::string& target_name) {
  if (target_name == "thor_rd") {
    return TargetFactory([]() -> Result<std::unique_ptr<TargetSystemInterface>> {
      return std::unique_ptr<TargetSystemInterface>(
          std::make_unique<ThorRdTarget>());
    });
  }
  if (target_name == "thor") {
    return TargetFactory([]() -> Result<std::unique_ptr<TargetSystemInterface>> {
      return std::unique_ptr<TargetSystemInterface>(MakeThorTarget());
    });
  }
  if (target_name == "cache_hierarchy") {
    return TargetFactory([]() -> Result<std::unique_ptr<TargetSystemInterface>> {
      return std::unique_ptr<TargetSystemInterface>(
          MakeCacheHierarchyTarget());
    });
  }
  if (target_name == "framework") {
    return TargetFactory([]() -> Result<std::unique_ptr<TargetSystemInterface>> {
      return std::unique_ptr<TargetSystemInterface>(
          std::make_unique<FrameworkTarget>());
    });
  }
  return NotFoundError("no builtin target factory for '" + target_name + "'");
}

TargetFactory WithWorkload(TargetFactory factory, WorkloadSpec workload) {
  return [factory = std::move(factory), workload = std::move(workload)]()
             -> Result<std::unique_ptr<TargetSystemInterface>> {
    ASSIGN_OR_RETURN(std::unique_ptr<TargetSystemInterface> target,
                     factory());
    RETURN_IF_ERROR(target->SetWorkload(workload));
    return target;
  };
}

}  // namespace goofi::target
