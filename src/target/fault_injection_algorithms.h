// The abstract target-system interface and the three fault-injection
// algorithms of paper Fig. 2.
//
// This is the paper's central design (§2.2): "The fault injection
// algorithms are generic, i.e. they are written using the abstract
// methods of the TargetSystemInterface class ... When support for a new
// target system is added to GOOFI, only the abstract methods need to be
// implemented." The algorithms are template methods: they fix the phase
// ordering (set-up, download, run-to-trigger, inject, run-to-end,
// read-back) and delegate every target-specific step to the abstract
// operations, which keep the paper's camelCase names.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/snapshot.h"
#include "sim/tracer.h"
#include "target/target_types.h"
#include "target/workloads.h"
#include "util/status.h"

namespace goofi::target {

class TargetSystemInterface {
 public:
  // One injectable location of the target, as advertised to the
  // campaign machinery (core/location.h builds the sampling space from
  // these; core/campaign.h persists them as TargetLocation rows).
  struct LocationInfo {
    enum class Kind {
      kScanElement,  // a named element of a scan chain
      kMemoryRange,  // a byte range of target memory
    };
    Kind kind = Kind::kScanElement;
    std::string name;
    std::string chain;             // scan elements: owning chain
    std::uint32_t width_bits = 0;  // scan elements: element width
    bool writable = true;          // false for observe-only elements
    std::string category;          // "reg", "control", "memory_code", ...
    std::uint32_t base = 0;        // memory ranges: start address
    std::uint32_t size = 0;        // memory ranges: length in bytes
  };

  virtual ~TargetSystemInterface() = default;

  virtual const std::string& target_name() const = 0;
  virtual std::vector<LocationInfo> ListLocations() const = 0;

  // ------------------------------------------------------------------
  // Driver API used by the campaign runner and the tool front ends.
  // ------------------------------------------------------------------

  // Install the workload for subsequent runs. The base implementation
  // just stores it; targets may validate eagerly.
  virtual Status SetWorkload(WorkloadSpec workload);

  void set_experiment(const ExperimentSpec& spec) { spec_ = spec; }
  const ExperimentSpec& experiment() const { return spec_; }

  void set_logging_mode(LoggingMode mode) { logging_mode_ = mode; }
  LoggingMode logging_mode() const { return logging_mode_; }

  // Forward the simulator's per-instruction trace events to `tracer`
  // during subsequent runs (the pre-injection analysis listens this
  // way). nullptr disconnects. Targets without an instruction-level
  // view may ignore it.
  void set_external_tracer(sim::Tracer* tracer) {
    external_tracer_ = tracer;
  }
  sim::Tracer* external_tracer() const { return external_tracer_; }

  // Fault-free reference run: the Fig. 2 sequence without the trigger
  // and injection phases. Produces the golden observation. Virtual so
  // decorator targets (target/flaky_target.h) can wrap the run without
  // re-implementing the Fig. 3 operations.
  virtual Status MakeReferenceRun();

  // Run the experiment in spec_ with the technique it names.
  virtual Status RunExperiment();

  // ------------------------------------------------------------------
  // The Fig. 2 algorithms (template methods; public so tools can drive
  // one technique directly, as goofi_tool's `exercise` mode does).
  // ------------------------------------------------------------------
  Status faultInjectorSCIFI();
  Status faultInjectorSWIFIPreRuntime();
  Status faultInjectorSWIFIRuntime();

  // The observation of the last completed run. TakeObservation hands it
  // over and resets the slate for the next run.
  const Observation& observation() const { return observation_; }
  virtual Observation TakeObservation();

  // ------------------------------------------------------------------
  // Checkpoint-fork execution (ZOFI-style golden-run memoization).
  //
  // A supporting target can capture its complete run state as a
  // sim::Snapshot, and can start subsequent runs from an installed
  // snapshot instead of reset: the Fig. 2 phase sequences are
  // unchanged, but writeMemory/runWorkload reinstate the snapshot in
  // place of the download + reset. The campaign runners drive this —
  // they record checkpoints during the reference run and install the
  // one nearest below each experiment's trigger.
  // ------------------------------------------------------------------

  // True when Capture/RestoreSnapshot reproduce runs bit-exactly. A
  // target whose transport consumes randomness per operation (link
  // faults) must refuse: chunked reference runs would desynchronize it.
  virtual bool SupportsCheckpointFork() const { return false; }

  virtual Result<sim::Snapshot> CaptureSnapshot();
  virtual Status RestoreSnapshot(const sim::Snapshot& snapshot);

  // Record a snapshot into `sink` at instruction 0 and then at every
  // multiple of `stride` during MakeReferenceRun. A null sink or zero
  // stride disables recording (the default).
  virtual void set_checkpoint_recording(std::uint64_t stride,
                                        std::vector<sim::Snapshot>* sink) {
    checkpoint_stride_ = stride;
    checkpoint_sink_ = sink;
  }

  // Start subsequent runs from `snapshot` (nullptr reverts to running
  // from reset). The runner keeps ownership shared so one snapshot
  // serves many experiments and many workers.
  virtual void set_start_snapshot(
      std::shared_ptr<const sim::Snapshot> snapshot) {
    start_snapshot_ = std::move(snapshot);
  }
  const sim::Snapshot* start_snapshot() const {
    return start_snapshot_.get();
  }

 protected:
  // ------------------------------------------------------------------
  // The abstract operations of paper Fig. 3, in the paper's naming.
  // The template methods above call them in the paper's order; concrete
  // targets implement them and record results into observation_.
  // ------------------------------------------------------------------
  virtual Status initTestCard() = 0;        // reset card + target
  virtual Status loadWorkload() = 0;        // prepare the workload image
  virtual Status writeMemory() = 0;         // download image to target
  virtual Status runWorkload() = 0;         // start execution
  virtual Status waitForBreakpoint() = 0;   // run until spec_.trigger
  virtual Status readScanChain() = 0;       // capture chain images
  virtual Status injectFault() = 0;         // apply spec_.targets
  virtual Status writeScanChain() = 0;      // write back modified images
  virtual Status waitForTermination() = 0;  // run to completion
  virtual Status readMemory() = 0;          // read back outputs

  WorkloadSpec workload_;
  ExperimentSpec spec_;
  Observation observation_;
  LoggingMode logging_mode_ = LoggingMode::kNormal;
  sim::Tracer* external_tracer_ = nullptr;
  std::shared_ptr<const sim::Snapshot> start_snapshot_;
  std::uint64_t checkpoint_stride_ = 0;
  std::vector<sim::Snapshot>* checkpoint_sink_ = nullptr;
};

// Which locations a technique can physically inject into:
//  - SCIFI: writable scan-chain elements,
//  - pre-runtime SWIFI: memory ranges (program/data image),
//  - runtime SWIFI: registers, the PC, and memory ranges.
// core::LocationSpace builds campaign sampling spaces from this; the
// analysis-layer linter uses it to flag filters a technique cannot reach.
bool TechniqueCanReach(Technique technique,
                       const TargetSystemInterface::LocationInfo& info);

}  // namespace goofi::target
