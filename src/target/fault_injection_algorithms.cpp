#include "target/fault_injection_algorithms.h"

#include "util/strings.h"

namespace goofi::target {

bool TechniqueCanReach(Technique technique,
                       const TargetSystemInterface::LocationInfo& info) {
  using LocationInfo = TargetSystemInterface::LocationInfo;
  switch (technique) {
    case Technique::kScifi:
      return info.kind == LocationInfo::Kind::kScanElement && info.writable;
    case Technique::kSwifiPreRuntime:
      return info.kind == LocationInfo::Kind::kMemoryRange;
    case Technique::kSwifiRuntime:
      if (info.kind == LocationInfo::Kind::kMemoryRange) return true;
      return info.writable && (StartsWith(info.name, "cpu.regs.r") ||
                               info.name == "cpu.pc");
  }
  return false;
}

Status TargetSystemInterface::SetWorkload(WorkloadSpec workload) {
  workload_ = std::move(workload);
  return Status::Ok();
}

Observation TargetSystemInterface::TakeObservation() {
  Observation taken = std::move(observation_);
  observation_ = Observation{};
  return taken;
}

Result<sim::Snapshot> TargetSystemInterface::CaptureSnapshot() {
  return UnimplementedError("target '" + target_name() +
                            "' does not support snapshots");
}

Status TargetSystemInterface::RestoreSnapshot(const sim::Snapshot&) {
  return UnimplementedError("target '" + target_name() +
                            "' does not support snapshots");
}

// ---------------------------------------------------------------------
// Paper Fig. 2. Each algorithm is a fixed sequence over the abstract
// operations; tests/target/algorithms_test.cpp asserts these sequences
// literally against a recording mock, so any reordering is a breaking
// change to the ported-target contract.
// ---------------------------------------------------------------------

Status TargetSystemInterface::MakeReferenceRun() {
  // The fault-free run: Fig. 2 minus the trigger/injection phases.
  observation_ = Observation{};
  RETURN_IF_ERROR(initTestCard());
  RETURN_IF_ERROR(loadWorkload());
  RETURN_IF_ERROR(writeMemory());
  RETURN_IF_ERROR(runWorkload());
  RETURN_IF_ERROR(waitForTermination());
  RETURN_IF_ERROR(readMemory());
  RETURN_IF_ERROR(readScanChain());
  return Status::Ok();
}

Status TargetSystemInterface::RunExperiment() {
  switch (spec_.technique) {
    case Technique::kScifi:
      return faultInjectorSCIFI();
    case Technique::kSwifiPreRuntime:
      return faultInjectorSWIFIPreRuntime();
    case Technique::kSwifiRuntime:
      return faultInjectorSWIFIRuntime();
  }
  return InvalidArgumentError("unknown fault-injection technique");
}

Status TargetSystemInterface::faultInjectorSCIFI() {
  observation_ = Observation{};
  RETURN_IF_ERROR(initTestCard());
  RETURN_IF_ERROR(loadWorkload());
  RETURN_IF_ERROR(writeMemory());
  RETURN_IF_ERROR(runWorkload());
  RETURN_IF_ERROR(waitForBreakpoint());
  RETURN_IF_ERROR(readScanChain());
  RETURN_IF_ERROR(injectFault());
  RETURN_IF_ERROR(writeScanChain());
  RETURN_IF_ERROR(waitForTermination());
  RETURN_IF_ERROR(readMemory());
  RETURN_IF_ERROR(readScanChain());
  return Status::Ok();
}

Status TargetSystemInterface::faultInjectorSWIFIPreRuntime() {
  // Reduced sequence: the fault goes into the downloaded memory image
  // before execution starts, so there is no trigger phase and no
  // scan-chain write-back.
  observation_ = Observation{};
  RETURN_IF_ERROR(initTestCard());
  RETURN_IF_ERROR(loadWorkload());
  RETURN_IF_ERROR(writeMemory());
  RETURN_IF_ERROR(injectFault());
  RETURN_IF_ERROR(runWorkload());
  RETURN_IF_ERROR(waitForTermination());
  RETURN_IF_ERROR(readMemory());
  RETURN_IF_ERROR(readScanChain());
  return Status::Ok();
}

Status TargetSystemInterface::faultInjectorSWIFIRuntime() {
  // Runtime SWIFI reaches registers and memory through the debug port
  // at the trigger, without the scan-chain read/write round trip.
  observation_ = Observation{};
  RETURN_IF_ERROR(initTestCard());
  RETURN_IF_ERROR(loadWorkload());
  RETURN_IF_ERROR(writeMemory());
  RETURN_IF_ERROR(runWorkload());
  RETURN_IF_ERROR(waitForBreakpoint());
  RETURN_IF_ERROR(injectFault());
  RETURN_IF_ERROR(waitForTermination());
  RETURN_IF_ERROR(readMemory());
  RETURN_IF_ERROR(readScanChain());
  return Status::Ok();
}

}  // namespace goofi::target
