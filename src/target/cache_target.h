// The cache-hierarchy target: the Thor RD board with fault injection
// moved *inside* the memory subsystem.
//
// Every other target mutates architectural state while the CPU is
// stopped. This one arms faults on the access path instead
// (sim/fault_injector.h): cache data/tag/parity array bits and in-flight
// load values, applied by PreRead/PostWrite hooks as the workload runs.
// The fault space enumerates (set, word, bit, array) coordinates from
// the real cache geometry and advertises them as writable scan elements
// on a synthetic "access_path" chain, so the unmodified campaign
// machinery — SCIFI reachability, location globs, instret triggers,
// checkpoint-fork eligibility, per-experiment RNG streams — drives the
// new fault models without change. That is the paper's genericity claim,
// and the target-agnostic conformance TEST_P suite proves it.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "sim/fault_injector.h"
#include "target/thor_rd_target.h"

namespace goofi::target {

// The four access-path fault models. The first three mutate a cache
// array (leaving derived state — stored parity — stale, which is what
// the parity EDM catches); the last corrupts the value on the wires
// after the parity check, the EDM's structural blind spot.
enum class CacheFaultModel {
  kDataBit,        // cache_data_bit:    data array flip  -> detected
  kTagBit,         // cache_tag_bit:     tag array flip   -> usually miss
  kParityBit,      // cache_parity_bit:  parity bit flip  -> false alarm
  kInflightLoadBit // inflight_load_bit: post-check flip  -> escapes
};

const char* CacheFaultModelName(CacheFaultModel model);
std::optional<CacheFaultModel> CacheFaultModelFromName(
    const std::string& name);

// The location-name glob selecting the coordinate family a model
// injects into (campaign runners narrow the sampled location space with
// it; goofi-lint checks filters against it).
const char* CacheFaultModelLocationGlob(CacheFaultModel model);

// Parses an access-path coordinate name —
//   (icache|dcache).set<N>.tag
//   (icache|dcache).set<N>.word<M>.(data|parity|inflight)
// — into an armed-fault prototype (unit/array/set/word; bit and the
// temporal kind come from the experiment spec). Returns nullopt for
// anything else, including the base target's scan-chain names.
std::optional<sim::ArmedCacheFault> ParseCacheCoordinate(
    const std::string& name);

class CacheHierarchyTarget : public ThorRdTarget {
 public:
  CacheHierarchyTarget() : CacheHierarchyTarget(TestCardOptions{}) {}
  explicit CacheHierarchyTarget(TestCardOptions options);

  // Base locations plus one coordinate per cache array bit group, from
  // the attached caches' real geometry.
  std::vector<LocationInfo> ListLocations() const override;

  // Snapshots additionally carry the injector's armed faults and access
  // counters, so a fork taken with a fault armed mid-window continues
  // bit-identically to replay-from-reset.
  Result<sim::Snapshot> CaptureSnapshot() override;
  Status RestoreSnapshot(const sim::Snapshot& snapshot) override;

  const sim::AccessPathInjector& injector() const { return injector_; }

 protected:
  Status initTestCard() override;
  Status injectFault() override;

 private:
  Status ArmCacheFault(sim::ArmedCacheFault coordinate,
                       const FaultTarget& fault);

  sim::AccessPathInjector injector_;
};

std::unique_ptr<CacheHierarchyTarget> MakeCacheHierarchyTarget();

}  // namespace goofi::target
