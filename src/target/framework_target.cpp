#include "target/framework_target.h"

#include <algorithm>

namespace goofi::target {
namespace {

// The workload sums 1..kDuration into counter0, so this is the largest
// value it can legally hold; anything above it is a detected error.
constexpr std::uint32_t kCounterCeiling = 64 * 65 / 2;

}  // namespace

const std::string& FrameworkTarget::target_name() const {
  static const std::string kName = "framework";
  return kName;
}

std::vector<TargetSystemInterface::LocationInfo>
FrameworkTarget::ListLocations() const {
  std::vector<LocationInfo> locations;
  for (unsigned i = 0; i < kCounters; ++i) {
    LocationInfo info;
    info.kind = LocationInfo::Kind::kScanElement;
    info.name = "counter" + std::to_string(i);
    info.chain = "internal";
    info.width_bits = 32;
    info.writable = true;
    info.category = "reg";
    locations.push_back(std::move(info));
  }
  LocationInfo id;
  id.kind = LocationInfo::Kind::kScanElement;
  id.name = "machine_id";
  id.chain = "internal";
  id.width_bits = 32;
  id.writable = false;
  id.category = "status";
  locations.push_back(std::move(id));
  return locations;
}

void FrameworkTarget::StepUntil(std::uint64_t until) {
  while (time_ < std::min(until, kDuration) && !detected_) {
    ++time_;
    counters_[0] += static_cast<std::uint32_t>(time_);
    counters_[1] ^= counters_[0];
    counters_[2] = (counters_[2] << 1 | counters_[2] >> 31) + 1;
    counters_[3] = counters_[0] + counters_[1] + counters_[2];
    if (counters_[0] > kCounterCeiling) detected_ = true;
  }
}

Status FrameworkTarget::initTestCard() {
  for (auto& counter : counters_) counter = 0;
  time_ = 0;
  detected_ = false;
  snapshot_ = BitVector();
  return Status::Ok();
}

Status FrameworkTarget::loadWorkload() { return Status::Ok(); }

Status FrameworkTarget::writeMemory() { return Status::Ok(); }

Status FrameworkTarget::runWorkload() {
  if (start_snapshot_ != nullptr) {
    // Fork from the installed golden checkpoint: initTestCard already
    // zeroed the machine, exactly like a replay before this time step.
    return RestoreSnapshot(*start_snapshot_);
  }
  return Status::Ok();
}

Status FrameworkTarget::waitForBreakpoint() {
  StepUntil(spec_.trigger.count);
  observation_.stop_reason = time_ < kDuration && !detected_
                                 ? sim::StopReason::kBreakpoint
                                 : sim::StopReason::kHalted;
  return Status::Ok();
}

Status FrameworkTarget::readScanChain() {
  BitVector image((kCounters + 1) * 32);
  for (unsigned i = 0; i < kCounters; ++i) {
    image.SetField(i * 32u, 32, counters_[i]);
  }
  image.SetField(kCounters * 32u, 32, kMachineId);
  observation_.chain_images["internal"] = image;
  snapshot_ = std::move(image);
  return Status::Ok();
}

Status FrameworkTarget::injectFault() {
  if (observation_.stop_reason != sim::StopReason::kBreakpoint &&
      spec_.technique != Technique::kSwifiPreRuntime) {
    // The workload finished before the trigger; nothing to corrupt.
    return Status::Ok();
  }
  for (const FaultTarget& fault : spec_.targets) {
    if (fault.location == "machine_id") {
      return TargetFaultError("machine_id is observe-only");
    }
    if (fault.location.size() != 8 ||
        fault.location.compare(0, 7, "counter") != 0) {
      return NotFoundError("no location named '" + fault.location + "'");
    }
    const unsigned index =
        static_cast<unsigned>(fault.location[7] - '0');
    if (index >= kCounters) {
      return NotFoundError("no location named '" + fault.location + "'");
    }
    if (fault.bit >= 32) {
      return OutOfRangeError("bit out of range for " + fault.location);
    }
    if (snapshot_.size() != 0) {
      // SCIFI: corrupt the captured image; writeScanChain applies it.
      snapshot_.Flip(index * 32u + fault.bit);
    } else {
      // The SWIFI variants skip the chain read: flip the live state.
      counters_[index] ^= 1u << fault.bit;
    }
  }
  observation_.fault_was_injected = !spec_.targets.empty();
  return Status::Ok();
}

Status FrameworkTarget::writeScanChain() {
  if (snapshot_.size() == 0) return Status::Ok();
  for (unsigned i = 0; i < kCounters; ++i) {
    counters_[i] =
        static_cast<std::uint32_t>(snapshot_.GetField(i * 32u, 32));
  }
  return Status::Ok();
}

Status FrameworkTarget::waitForTermination() {
  StepUntil(kDuration);
  observation_.stop_reason =
      detected_ ? sim::StopReason::kEdm : sim::StopReason::kHalted;
  if (detected_) {
    sim::EdmEvent edm;
    edm.type = sim::EdmType::kAssertion;
    edm.time = time_;
    observation_.edm = edm;
  }
  observation_.instructions = time_;
  return Status::Ok();
}

Status FrameworkTarget::readMemory() {
  observation_.emitted = {counters_[0], counters_[3]};
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Checkpoint-fork support. The machine state fits in a fixed-size blob:
// the four counters, the time step and the detection flag. The SCIFI
// working image (snapshot_) is scratch between readScanChain and
// writeScanChain — it is always empty at checkpoint and fork points.
// ---------------------------------------------------------------------

Result<sim::Snapshot> FrameworkTarget::CaptureSnapshot() {
  sim::Snapshot snapshot;
  snapshot.instret = time_;
  std::vector<std::uint8_t>& blob = snapshot.extras["framework"];
  auto append64 = [&blob](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      blob.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  };
  for (const std::uint32_t counter : counters_) append64(counter);
  append64(time_);
  append64(detected_ ? 1 : 0);
  return snapshot;
}

Status FrameworkTarget::RestoreSnapshot(const sim::Snapshot& snapshot) {
  const auto found = snapshot.extras.find("framework");
  if (found == snapshot.extras.end() ||
      found->second.size() != (kCounters + 2) * 8) {
    return InvalidArgumentError(
        "snapshot carries no framework machine state");
  }
  const std::vector<std::uint8_t>& blob = found->second;
  auto read64 = [&blob](std::size_t offset) {
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(blob[offset + i]) << (8 * i);
    }
    return value;
  };
  for (unsigned i = 0; i < kCounters; ++i) {
    counters_[i] = static_cast<std::uint32_t>(read64(i * 8));
  }
  time_ = read64(kCounters * 8);
  detected_ = read64((kCounters + 1) * 8) != 0;
  snapshot_ = BitVector();
  return Status::Ok();
}

Status FrameworkTarget::MakeReferenceRun() {
  if (checkpoint_sink_ == nullptr || checkpoint_stride_ == 0) {
    return TargetSystemInterface::MakeReferenceRun();
  }
  // The Fig. 2 reference sequence, with the run-to-completion phase
  // chunked at stride boundaries to record checkpoints.
  observation_ = Observation{};
  RETURN_IF_ERROR(initTestCard());
  RETURN_IF_ERROR(loadWorkload());
  RETURN_IF_ERROR(writeMemory());
  RETURN_IF_ERROR(runWorkload());
  {
    ASSIGN_OR_RETURN(sim::Snapshot boot, CaptureSnapshot());
    checkpoint_sink_->push_back(std::move(boot));
  }
  for (;;) {
    const std::uint64_t boundary =
        time_ + (checkpoint_stride_ - time_ % checkpoint_stride_);
    if (boundary >= kDuration) break;
    StepUntil(boundary);
    if (detected_) break;
    ASSIGN_OR_RETURN(sim::Snapshot snapshot, CaptureSnapshot());
    checkpoint_sink_->push_back(std::move(snapshot));
  }
  RETURN_IF_ERROR(waitForTermination());
  RETURN_IF_ERROR(readMemory());
  RETURN_IF_ERROR(readScanChain());
  return Status::Ok();
}

}  // namespace goofi::target
