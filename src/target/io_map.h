// Thor RD board memory map (docs/ISA.md §"Board memory map").
//
// The test card installs these segments before downloading a workload.
// Addresses are physical; there is no MMU on the board.
#pragma once

#include <cstdint>

namespace goofi::target {

// Code: read/execute. The test card's program download bypasses the
// write protection (unchecked debug-port pokes), exactly like a real
// flash programmer.
inline constexpr std::uint32_t kCodeBase = 0x00000000;
inline constexpr std::uint32_t kCodeSize = 64 * 1024;

// Data: read/write, cacheable.
inline constexpr std::uint32_t kDataBase = 0x00010000;
inline constexpr std::uint32_t kDataSize = 64 * 1024;

// Stack: read/write, cacheable. Workloads initialise sp = kStackTop.
inline constexpr std::uint32_t kStackBase = 0x00020000;
inline constexpr std::uint32_t kStackSize = 16 * 1024;
inline constexpr std::uint32_t kStackTop = kStackBase + kStackSize;

// Memory-mapped IO page: read/write, uncacheable. The environment model
// (plant) exchanges words with the workload here.
inline constexpr std::uint32_t kIoBase = 0xFFFF0000;
inline constexpr std::uint32_t kIoSize = 256;
inline constexpr std::uint32_t kIoInOffset = 0x00;   // sensor words
inline constexpr std::uint32_t kIoOutOffset = 0x20;  // actuator words
inline constexpr std::uint32_t kIoIterOffset = 0x40; // iteration counter

}  // namespace goofi::target
