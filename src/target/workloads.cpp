#include "target/workloads.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/config.h"
#include "util/strings.h"

namespace goofi::target {
namespace {

// ---------------------------------------------------------------------
// fib: iterative Fibonacci. Small and branchy — the default workload of
// the campaign tests. The instruction at position 10 is the loop branch,
// which neither reads nor writes r2: an instret=10 injection into r2
// stays confined to r2 for exactly one captured instruction before the
// recurrence spreads it (tests/core/propagation_test.cpp).
// ---------------------------------------------------------------------
constexpr const char kFibAsm[] = R"(; fib: 20 Fibonacci steps, emit fib(21).
.entry start
start:
  la sp, 0x24000
  li r1, 0              ; fib(k-1)
  li r2, 1              ; fib(k)
  li r3, 0              ; step counter
  li r5, 20             ; step count
fib_loop:
  add r4, r1, r2
  mov r1, r2
  mov r2, r4
  addi r3, r3, 1
  blt r3, r5, fib_loop
  la r6, fib_out
  st r2, [r6]
  mov r1, r2
  sys 4                 ; emit fib(21) = 10946
  halt

.org 0x10000
fib_out:
  .space 4
)";

// ---------------------------------------------------------------------
// isort: insertion sort of 24 words, copy to the output region with a
// checksum. Heavy, repetitive data-cache traffic over a small working
// set — the workload the cache-parity EDM studies use.
// ---------------------------------------------------------------------
constexpr const char kIsortAsm[] = R"(; isort: insertion sort of 24 words.
.entry start
start:
  la sp, 0x24000
  la r1, is_in
  li r2, 24             ; element count
  li r3, 1              ; i
is_outer:
  bge r3, r2, is_sorted
  slli r4, r3, 2
  add r4, r1, r4
  ld r5, [r4]           ; key = a[i]
  mov r6, r3            ; j = i
is_inner:
  beq r6, r0, is_place
  slli r7, r6, 2
  add r7, r1, r7
  ld r9, [r7-4]         ; a[j-1]
  bge r5, r9, is_place
  st r9, [r7]           ; a[j] = a[j-1]
  addi r6, r6, -1
  b is_inner
is_place:
  slli r7, r6, 2
  add r7, r1, r7
  st r5, [r7]
  addi r3, r3, 1
  b is_outer
is_sorted:
  li r3, 0
  li r10, 0             ; checksum
  la r11, is_out
is_copy:
  bge r3, r2, is_done
  slli r4, r3, 2
  add r5, r1, r4
  ld r6, [r5]
  add r7, r11, r4
  st r6, [r7]
  add r10, r10, r6
  addi r3, r3, 1
  b is_copy
is_done:
  la r7, is_csum
  st r10, [r7]
  mov r1, r10
  sys 4                 ; emit checksum
  halt

.org 0x10000
is_in:
  .word 9301, 88, 4097, 12, 7640, 3, 5112, 900
  .word 64, 8191, 2, 6000, 451, 7777, 1024, 33
  .word 2900, 510, 9999, 1, 3333, 620, 8402, 77
.org 0x10100
is_out:
  .space 96
is_csum:
  .space 4
)";

// ---------------------------------------------------------------------
// qsort: recursive quicksort (Lomuto partition) of 20 words. Exercises
// the stack, calls and returns — the workload for call-trigger and
// pointer-corruption studies.
// ---------------------------------------------------------------------
constexpr const char kQsortAsm[] = R"(; qsort: recursive quicksort of 20 words.
.entry start
start:
  la sp, 0x24000
  la r1, qs_in
  li r2, 0              ; lo
  li r3, 19             ; hi
  call qs_sort
  li r3, 0
  li r10, 0             ; checksum
  li r2, 20
  la r11, qs_out
qs_copy:
  bge r3, r2, qs_done
  slli r4, r3, 2
  add r5, r1, r4
  ld r6, [r5]
  add r7, r11, r4
  st r6, [r7]
  add r10, r10, r6
  addi r3, r3, 1
  b qs_copy
qs_done:
  la r7, qs_csum
  st r10, [r7]
  mov r1, r10
  sys 4                 ; emit checksum
  halt

; qs_sort(r2 = lo, r3 = hi); r1 = array base, preserved.
qs_sort:
  bge r2, r3, qs_ret
  push lr
  push r2
  push r3
  slli r4, r3, 2
  add r4, r1, r4
  ld r5, [r4]           ; pivot = a[hi]
  mov r6, r2            ; i = store index
  mov r7, r2            ; j
qs_part:
  bge r7, r3, qs_part_done
  slli r8, r7, 2
  add r8, r1, r8
  ld r9, [r8]
  bge r9, r5, qs_next
  slli r10, r6, 2
  add r10, r1, r10
  ld r11, [r10]
  st r9, [r10]
  st r11, [r8]
  addi r6, r6, 1
qs_next:
  addi r7, r7, 1
  b qs_part
qs_part_done:
  slli r10, r6, 2
  add r10, r1, r10
  ld r11, [r10]
  st r5, [r10]
  st r11, [r4]          ; swap pivot into place
  pop r3                ; hi
  pop r2                ; lo
  push r3
  push r6               ; pivot index
  mov r3, r6
  addi r3, r3, -1
  call qs_sort          ; left half
  pop r2
  addi r2, r2, 1
  pop r3
  call qs_sort          ; right half
  pop lr
qs_ret:
  ret

.org 0x10000
qs_in:
  .word 712, 9550, 18, 4203, 66, 8120, 345, 9999
  .word 4, 1287, 7040, 23, 5601, 888, 3102, 7
  .word 6425, 150, 2048, 511
.org 0x10100
qs_out:
  .space 80
qs_csum:
  .space 4
)";

// ---------------------------------------------------------------------
// matmul: 4x4 integer matrix multiply plus checksum.
// ---------------------------------------------------------------------
constexpr const char kMatmulAsm[] = R"(; matmul: C = A * B, 4x4 integers.
.entry start
start:
  la sp, 0x24000
  la r1, mm_a
  la r2, mm_b
  la r3, mm_c
  li r4, 0              ; i
mm_i:
  li r5, 0              ; j
mm_j:
  li r6, 0              ; k
  li r7, 0              ; accumulator
mm_k:
  slli r8, r4, 2
  add r8, r8, r6
  slli r8, r8, 2
  add r8, r1, r8
  ld r9, [r8]           ; a[i][k]
  slli r10, r6, 2
  add r10, r10, r5
  slli r10, r10, 2
  add r10, r2, r10
  ld r11, [r10]         ; b[k][j]
  mul r9, r9, r11
  add r7, r7, r9
  addi r6, r6, 1
  li r12, 4
  blt r6, r12, mm_k
  slli r8, r4, 2
  add r8, r8, r5
  slli r8, r8, 2
  add r8, r3, r8
  st r7, [r8]           ; c[i][j]
  addi r5, r5, 1
  li r12, 4
  blt r5, r12, mm_j
  addi r4, r4, 1
  li r12, 4
  blt r4, r12, mm_i
  li r4, 0
  li r10, 0             ; checksum
mm_sum:
  slli r8, r4, 2
  add r8, r3, r8
  ld r9, [r8]
  add r10, r10, r9
  addi r4, r4, 1
  li r12, 16
  blt r4, r12, mm_sum
  la r8, mm_csum
  st r10, [r8]
  mov r1, r10
  sys 4                 ; emit checksum
  halt

.org 0x10000
mm_a:
  .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
mm_b:
  .word 2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5
.org 0x10100
mm_c:
  .space 64
mm_csum:
  .space 4
)";

// ---------------------------------------------------------------------
// crc32: bitwise CRC-32 (reflected, poly 0xEDB88320) over 32 bytes.
// ---------------------------------------------------------------------
constexpr const char kCrc32Asm[] = R"(; crc32: bitwise CRC over 32 bytes.
.entry start
start:
  la sp, 0x24000
  la r1, crc_msg
  li r2, 32             ; byte count
  li r3, 0              ; index
  li r4, -1             ; crc = 0xffffffff
  la r5, 0xEDB88320     ; reflected polynomial
crc_byte:
  bge r3, r2, crc_done
  add r6, r1, r3
  ldb r7, [r6]
  xor r4, r4, r7
  li r8, 8
crc_bit:
  andi r9, r4, 1
  srli r4, r4, 1
  beq r9, r0, crc_nox
  xor r4, r4, r5
crc_nox:
  addi r8, r8, -1
  bne r8, r0, crc_bit
  addi r3, r3, 1
  b crc_byte
crc_done:
  li r9, -1
  xor r4, r4, r9        ; final complement
  la r8, crc_out
  st r4, [r8]
  mov r1, r4
  sys 4                 ; emit the CRC
  halt

.org 0x10000
crc_msg:
  .word 0x6f6f6721, 0x69206669, 0x6e6a6563, 0x74733a20
  .word 0x73636966, 0x69207377, 0x69666920, 0x31393438
.org 0x10100
crc_out:
  .space 4
)";

// ---------------------------------------------------------------------
// engine_control: integer PID speed controller for the jet-engine plant
// model (target/environment.h). Runs a 40-iteration mission: each loop
// reads the speed sensor from the IO IN page, computes an actuator
// command, writes it to the IO OUT page, kicks the watchdog and signals
// the iteration boundary where the plant model exchanges data. The
// paper's fail-silence studies classify experiments whose actuator
// stream diverges from the reference.
// ---------------------------------------------------------------------
constexpr const char kEngineControlBody[] = R"(ec_loop:
  ld r4, [r10]          ; sensor: measured speed (IO IN)
  li r5, 600            ; setpoint
  sub r6, r5, r4        ; error
  add r2, r2, r6        ; integral
  li r7, 2048           ; anti-windup clamp
  blt r2, r7, ec_iw_hi
  mov r2, r7
ec_iw_hi:
  li r7, -2048
  bge r2, r7, ec_iw_lo
  mov r2, r7
ec_iw_lo:
  sub r8, r6, r3        ; derivative
  mov r3, r6
  slli r9, r6, 3        ; P: error * 8
  srai r11, r2, 2       ; I: integral / 4
  add r9, r9, r11
  slli r11, r8, 1       ; D: derivative * 2
  add r9, r9, r11
  addi r9, r9, 500      ; feed-forward bias
  ; Executable assertion (paper's software EDM): a healthy controller
  ; never leaves this envelope; corrupted state trips it.
  li r7, -20000
  bge r9, r7, ec_a1
  mov r1, r9
  sys 2
ec_a1:
  li r7, 20000
  blt r9, r7, ec_a2
  mov r1, r9
  sys 2
ec_a2:
  bge r9, r0, ec_c1     ; clamp actuator into [0, 1000]
  li r9, 0
ec_c1:
  li r7, 1000
  blt r9, r7, ec_c2
  mov r9, r7
ec_c2:
  st r9, [r10+32]       ; actuator command (IO OUT)
  sys 3                 ; watchdog kick
  sys 1                 ; iteration boundary: plant model exchanges
  b ec_loop
)";

const std::string kEngineControlAsm =
    std::string(R"(; engine_control: PID engine controller, 40 iterations.
.entry start
start:
  la sp, 0x24000
  la r10, 0xFFFF0000    ; IO page: IN at +0, OUT at +32
  li r2, 0              ; integral
  li r3, 0              ; previous error
)") + kEngineControlBody;

// engine_control_ber adds best-effort recovery: EDM detections vector to
// trap_handler (the target enables trap-to-handler mode when the symbol
// is present), which counts the recovery, scrubs the controller state
// and resumes the mission.
const std::string kEngineControlBerAsm =
    std::string(R"(; engine_control_ber: PID controller with best-effort
; recovery: detections trap to trap_handler instead of failing stop.
.entry start
start:
  la sp, 0x24000
  la r10, 0xFFFF0000    ; IO page: IN at +0, OUT at +32
  li r2, 0              ; integral
  li r3, 0              ; previous error
)") + kEngineControlBody + R"(
trap_handler:
  sys 5                 ; count one best-effort recovery
  la sp, 0x24000        ; scrub controller state and resume the mission
  la r10, 0xFFFF0000
  li r2, 0
  li r3, 0
  sys 3
  b ec_loop
)";

struct Builtin {
  const char* name;
  std::string assembly;
  std::uint32_t output_base;
  std::uint32_t output_length;
  const char* environment;
  TerminationSpec termination;
};

const std::vector<Builtin>& Builtins() {
  static const std::vector<Builtin>* builtins = new std::vector<Builtin>{
      {"crc32", kCrc32Asm, 0x10100, 4, "", {100000, 0}},
      {"engine_control", kEngineControlAsm, 0, 0, "engine", {500000, 40}},
      {"engine_control_ber", kEngineControlBerAsm, 0, 0, "engine",
       {500000, 40}},
      {"fib", kFibAsm, 0x10000, 4, "", {20000, 0}},
      {"isort", kIsortAsm, 0x10100, 100, "", {100000, 0}},
      {"matmul", kMatmulAsm, 0x10100, 68, "", {100000, 0}},
      {"qsort", kQsortAsm, 0x10100, 84, "", {100000, 0}},
  };
  return *builtins;
}

}  // namespace

std::vector<std::string> BuiltinWorkloadNames() {
  std::vector<std::string> names;
  for (const Builtin& builtin : Builtins()) names.push_back(builtin.name);
  return names;
}

Result<WorkloadSpec> GetBuiltinWorkload(const std::string& name) {
  for (const Builtin& builtin : Builtins()) {
    if (name == builtin.name) {
      WorkloadSpec spec;
      spec.name = builtin.name;
      spec.assembly = builtin.assembly;
      spec.output_base = builtin.output_base;
      spec.output_length = builtin.output_length;
      spec.environment = builtin.environment;
      spec.termination = builtin.termination;
      return spec;
    }
  }
  return NotFoundError("no built-in workload named '" + name + "'");
}

Result<WorkloadSpec> LoadWorkloadSpecFromFile(const std::string& path) {
  ASSIGN_OR_RETURN(const Config config, Config::LoadFile(path));
  const ConfigSection* section = config.FindSection("workload");
  if (section == nullptr) {
    return ParseError(path + ": missing [workload] section");
  }
  WorkloadSpec spec;
  spec.name = section->GetStringOr("name", "");
  if (spec.name.empty()) {
    return ParseError(path + ": workload has no name");
  }
  const auto assembly_file = section->GetString("assembly_file");
  if (!assembly_file) {
    return ParseError(path + ": workload has no assembly_file");
  }
  // assembly_file is relative to the .workload file's directory.
  std::string assembly_path = *assembly_file;
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && !assembly_file->empty() &&
      (*assembly_file)[0] != '/') {
    assembly_path = path.substr(0, slash + 1) + *assembly_file;
  }
  std::ifstream in(assembly_path, std::ios::binary);
  if (!in) {
    return IoError("cannot read assembly file " + assembly_path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  spec.assembly = text.str();
  ASSIGN_OR_RETURN(const std::int64_t base,
                   section->Has("output_base")
                       ? section->GetInt("output_base")
                       : Result<std::int64_t>(0));
  ASSIGN_OR_RETURN(const std::int64_t length,
                   section->Has("output_length")
                       ? section->GetInt("output_length")
                       : Result<std::int64_t>(0));
  spec.output_base = static_cast<std::uint32_t>(base);
  spec.output_length = static_cast<std::uint32_t>(length);
  spec.environment = section->GetStringOr("environment", "");
  spec.termination.max_instructions = static_cast<std::uint64_t>(
      section->GetIntOr("max_instructions", 0));
  spec.termination.max_iterations = static_cast<std::uint64_t>(
      section->GetIntOr("max_iterations", 0));
  return spec;
}

}  // namespace goofi::target
