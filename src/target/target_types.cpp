#include "target/target_types.h"

#include "util/strings.h"

namespace goofi::target {

const char* TechniqueName(Technique technique) {
  switch (technique) {
    case Technique::kScifi: return "scifi";
    case Technique::kSwifiPreRuntime: return "swifi_pre_runtime";
    case Technique::kSwifiRuntime: return "swifi_runtime";
  }
  return "?";
}

std::optional<Technique> TechniqueFromName(const std::string& name) {
  if (name == "scifi") return Technique::kScifi;
  if (name == "swifi_pre_runtime") return Technique::kSwifiPreRuntime;
  if (name == "swifi_runtime") return Technique::kSwifiRuntime;
  return std::nullopt;
}

const char* FaultModelKindName(FaultModel::Kind kind) {
  switch (kind) {
    case FaultModel::Kind::kTransientBitFlip: return "transient";
    case FaultModel::Kind::kIntermittentBitFlip: return "intermittent";
    case FaultModel::Kind::kPermanentStuckAt: return "permanent";
  }
  return "?";
}

std::optional<FaultModel::Kind> FaultModelKindFromName(
    const std::string& name) {
  if (name == "transient") return FaultModel::Kind::kTransientBitFlip;
  if (name == "intermittent") return FaultModel::Kind::kIntermittentBitFlip;
  if (name == "permanent") return FaultModel::Kind::kPermanentStuckAt;
  return std::nullopt;
}

// ---------------------------------------------------------------------
// Observation serialization. ';'-separated key=value records; binary
// payloads (EDM detail text, output bytes) are hex-encoded so the text
// stays free of the separators and of the TSV metacharacters the
// database layer escapes.
// ---------------------------------------------------------------------

std::string Observation::Serialize() const {
  std::string out;
  out += StrFormat("stop=%d", static_cast<int>(stop_reason));
  out += StrFormat(";instr=%llu",
                   static_cast<unsigned long long>(instructions));
  out += StrFormat(";iter=%llu", static_cast<unsigned long long>(iterations));
  out += StrFormat(";recov=%llu",
                   static_cast<unsigned long long>(recovery_count));
  out += StrFormat(";inj=%d", fault_was_injected ? 1 : 0);
  if (link_words_retried != 0) {
    out += StrFormat(";linkretry=%llu",
                     static_cast<unsigned long long>(link_words_retried));
  }
  if (edm.has_value()) {
    out += StrFormat(";edm=%d,%llu,0x%08x,%s", static_cast<int>(edm->type),
                     static_cast<unsigned long long>(edm->time), edm->pc,
                     HexEncode(edm->detail).c_str());
  }
  for (const auto& [name, image] : chain_images) {
    out += ";chain:" + name + "=" + image.ToHexString();
  }
  if (!output_region.empty()) {
    const std::string bytes(output_region.begin(), output_region.end());
    out += ";out=" + HexEncode(bytes);
  }
  auto join_words = [](const std::vector<std::uint32_t>& words) {
    std::string text;
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (i != 0) text += '+';
      text += StrFormat("%u", words[i]);
    }
    return text;
  };
  if (!emitted.empty()) out += ";emit=" + join_words(emitted);
  if (!env_outputs.empty()) out += ";env=" + join_words(env_outputs);
  if (!detail_trace.empty()) {
    out += ";trace=";
    for (std::size_t i = 0; i < detail_trace.size(); ++i) {
      if (i != 0) out += '|';
      out += StrFormat(
          "%llu@", static_cast<unsigned long long>(detail_trace[i].first));
      out += detail_trace[i].second.ToHexString();
    }
  }
  return out;
}

namespace {

Status BadObservation(const std::string& what) {
  return ParseError("bad observation record: " + what);
}

Result<std::vector<std::uint32_t>> ParseWordList(const std::string& text) {
  std::vector<std::uint32_t> words;
  for (const std::string& piece : SplitString(text, '+')) {
    if (piece.empty()) continue;
    const auto value = ParseUint64(piece);
    if (!value || *value > 0xffffffffull) {
      return BadObservation("word list entry '" + piece + "'");
    }
    words.push_back(static_cast<std::uint32_t>(*value));
  }
  return words;
}

}  // namespace

Result<Observation> Observation::Deserialize(const std::string& text) {
  Observation observation;
  bool saw_stop = false;
  for (const std::string& record : SplitString(text, ';')) {
    if (record.empty()) continue;
    const std::size_t eq = record.find('=');
    if (eq == std::string::npos) return BadObservation(record);
    const std::string key = record.substr(0, eq);
    const std::string value = record.substr(eq + 1);
    if (key == "stop") {
      const auto parsed = ParseUint64(value);
      if (!parsed || *parsed > 4) return BadObservation("stop=" + value);
      observation.stop_reason = static_cast<sim::StopReason>(*parsed);
      saw_stop = true;
    } else if (key == "instr" || key == "iter" || key == "recov" ||
               key == "linkretry") {
      const auto parsed = ParseUint64(value);
      if (!parsed) return BadObservation(key + "=" + value);
      if (key == "instr") observation.instructions = *parsed;
      if (key == "iter") observation.iterations = *parsed;
      if (key == "recov") observation.recovery_count = *parsed;
      if (key == "linkretry") observation.link_words_retried = *parsed;
    } else if (key == "inj") {
      observation.fault_was_injected = value == "1";
    } else if (key == "edm") {
      const std::vector<std::string> fields = SplitString(value, ',');
      if (fields.size() != 4) return BadObservation("edm=" + value);
      const auto type = ParseUint64(fields[0]);
      const auto time = ParseUint64(fields[1]);
      const auto pc = ParseUint64(fields[2]);
      const auto detail = HexDecode(fields[3]);
      if (!type || *type >= sim::kEdmTypeCount || !time || !pc || !detail) {
        return BadObservation("edm=" + value);
      }
      sim::EdmEvent event;
      event.type = static_cast<sim::EdmType>(*type);
      event.time = *time;
      event.pc = static_cast<std::uint32_t>(*pc);
      event.detail = *detail;
      observation.edm = std::move(event);
    } else if (StartsWith(key, "chain:")) {
      BitVector image;
      if (!BitVector::FromHexString(value, &image)) {
        return BadObservation(key + "=" + value);
      }
      observation.chain_images[key.substr(6)] = std::move(image);
    } else if (key == "out") {
      const auto bytes = HexDecode(value);
      if (!bytes) return BadObservation("out=" + value);
      observation.output_region.assign(bytes->begin(), bytes->end());
    } else if (key == "emit") {
      ASSIGN_OR_RETURN(observation.emitted, ParseWordList(value));
    } else if (key == "env") {
      ASSIGN_OR_RETURN(observation.env_outputs, ParseWordList(value));
    } else if (key == "trace") {
      for (const std::string& entry : SplitString(value, '|')) {
        if (entry.empty()) continue;
        const std::size_t at = entry.find('@');
        if (at == std::string::npos) return BadObservation("trace entry");
        const auto time = ParseUint64(entry.substr(0, at));
        BitVector image;
        if (!time || !BitVector::FromHexString(entry.substr(at + 1), &image)) {
          return BadObservation("trace entry '" + entry + "'");
        }
        observation.detail_trace.emplace_back(*time, std::move(image));
      }
    } else {
      // Unknown keys from a newer writer are skipped, not fatal.
    }
  }
  if (!saw_stop) return BadObservation("missing stop reason");
  return observation;
}

}  // namespace goofi::target
