// The porting skeleton from the paper's Fig. 3.
//
// GOOFI is ported to a new target system by subclassing FrameworkTarget
// and overriding target_name(), ListLocations() and the ten abstract
// operations the fault-injection algorithms call (initTestCard,
// loadWorkload, writeMemory, runWorkload, waitForBreakpoint,
// readScanChain, injectFault, writeScanChain, waitForTermination,
// readMemory). See examples/port_new_target.cpp and the toy plugin in
// tests/core/plugins for complete ports.
//
// Unlike the paper's abstract skeleton, this base class is itself
// driveable: the default operations run a tiny deterministic counter
// machine, so the conformance suite can prove the template methods
// against the skeleton before any real target exists, and a port can
// override one operation at a time and stay runnable throughout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "target/fault_injection_algorithms.h"

namespace goofi::target {

class FrameworkTarget : public TargetSystemInterface {
 public:
  const std::string& target_name() const override;

  // Four writable 32-bit counters on an "internal" chain plus one
  // observe-only identification register.
  std::vector<LocationInfo> ListLocations() const override;

  // Checkpoint-fork support for the skeleton's counter machine, carried
  // as an opaque "framework" blob in sim::Snapshot::extras. A port that
  // adds target state of its own must override these three alongside
  // the Fig. 3 operations — or override SupportsCheckpointFork to
  // return false until it does.
  bool SupportsCheckpointFork() const override { return true; }
  Result<sim::Snapshot> CaptureSnapshot() override;
  Status RestoreSnapshot(const sim::Snapshot& snapshot) override;
  Status MakeReferenceRun() override;

 protected:
  Status initTestCard() override;
  Status loadWorkload() override;
  Status writeMemory() override;
  Status runWorkload() override;
  Status waitForBreakpoint() override;
  Status readScanChain() override;
  Status injectFault() override;
  Status writeScanChain() override;
  Status waitForTermination() override;
  Status readMemory() override;

 private:
  static constexpr unsigned kCounters = 4;
  static constexpr std::uint64_t kDuration = 64;
  static constexpr std::uint32_t kMachineId = 0x600F1F03;

  // Advance the counter machine until `until` steps have elapsed, the
  // built-in range EDM fires, or the workload finishes.
  void StepUntil(std::uint64_t until);

  std::uint32_t counters_[kCounters] = {0, 0, 0, 0};
  std::uint64_t time_ = 0;
  bool detected_ = false;
  BitVector snapshot_;
};

}  // namespace goofi::target
