#include "target/thor_rd_target.h"

#include <algorithm>

#include "target/io_map.h"
#include "util/strings.h"

namespace goofi::target {
namespace {

// Global experiment budget when neither the spec nor the workload sets
// one: well past any built-in workload, but bounded so a corrupted
// target with every EDM disabled still terminates.
constexpr std::uint64_t kDefaultInstructionBudget = 2'000'000;

bool IsMemoryLocation(const std::string& location) {
  return StartsWith(location, "mem@");
}

Result<std::uint32_t> ParseMemoryLocation(const std::string& location) {
  const auto address = ParseUint64(location.substr(4));
  if (!address || *address > 0xffffffffull) {
    return InvalidArgumentError("bad memory location '" + location + "'");
  }
  return static_cast<std::uint32_t>(*address);
}

const char* SegmentCategory(bool executable, std::uint32_t base) {
  if (executable) return "memory_code";
  return base >= kStackBase && base < kStackBase + kStackSize
             ? "memory_stack"
             : "memory_data";
}

}  // namespace

ThorRdTarget::ThorRdTarget(TestCardOptions options, std::string name)
    : name_(std::move(name)), card_(options) {}

// ---------------------------------------------------------------------
// Location inventory.
// ---------------------------------------------------------------------

std::vector<TargetSystemInterface::LocationInfo>
ThorRdTarget::ListLocations() const {
  std::vector<LocationInfo> locations;
  for (const sim::ScanChain& chain : card_.chains().chains) {
    for (const sim::ScanElement& element : chain.elements()) {
      LocationInfo info;
      info.kind = LocationInfo::Kind::kScanElement;
      info.name = element.name;
      info.chain = chain.name();
      info.width_bits = static_cast<std::uint32_t>(element.width);
      info.writable = element.access == sim::ScanAccess::kReadWrite;
      info.category = element.category;
      locations.push_back(std::move(info));
    }
  }
  auto add_range = [&locations](std::string name, std::uint32_t base,
                                std::uint32_t size, const char* category) {
    LocationInfo info;
    info.kind = LocationInfo::Kind::kMemoryRange;
    info.name = std::move(name);
    info.writable = true;
    info.category = category;
    info.base = base;
    info.size = size;
    locations.push_back(std::move(info));
  };
  if (assembled_.has_value()) {
    // With a workload installed, SWIFI's fault space is the downloaded
    // image (the paper injects into "the memory image of the workload").
    for (const auto& [base, bytes] : assembled_->chunks) {
      const bool in_code = base < kCodeBase + kCodeSize;
      const std::uint32_t size =
          static_cast<std::uint32_t>((bytes.size() + 3) & ~std::size_t{3});
      add_range(StrFormat("mem.%s@0x%08x",
                          in_code ? "code" : "data", base),
                base, size, SegmentCategory(in_code, base));
    }
  } else {
    // No workload yet: advertise the board's full memory map.
    add_range("mem.code", kCodeBase, kCodeSize, "memory_code");
    add_range("mem.data", kDataBase, kDataSize, "memory_data");
    add_range("mem.stack", kStackBase, kStackSize, "memory_stack");
  }
  return locations;
}

Status ThorRdTarget::SetWorkload(WorkloadSpec workload) {
  ASSIGN_OR_RETURN(sim::AssembledProgram program,
                   sim::Assemble(workload.assembly));
  if (!workload.environment.empty()) {
    ASSIGN_OR_RETURN(environment_, MakeEnvironment(workload.environment));
  } else {
    environment_.reset();
  }
  assembled_ = std::move(program);
  workload_ = std::move(workload);
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Run-phase plumbing.
// ---------------------------------------------------------------------

ThorRdTarget::EffectiveTermination ThorRdTarget::ResolveTermination()
    const {
  EffectiveTermination term;
  term.max_instructions = spec_.termination.max_instructions != 0
                              ? spec_.termination.max_instructions
                              : workload_.termination.max_instructions;
  if (term.max_instructions == 0) {
    term.max_instructions = kDefaultInstructionBudget;
  }
  term.max_iterations = spec_.termination.max_iterations != 0
                            ? spec_.termination.max_iterations
                            : workload_.termination.max_iterations;
  return term;
}

std::uint64_t ThorRdTarget::RemainingBudget(
    const EffectiveTermination& term) const {
  const std::uint64_t executed = card_.cpu().instret();
  return executed >= term.max_instructions
             ? 0
             : term.max_instructions - executed;
}

std::function<bool(sim::Cpu&)> ThorRdTarget::IterationCallback() {
  if (environment_ == nullptr) return nullptr;
  Environment* environment = environment_.get();
  return [environment](sim::Cpu& cpu) {
    return environment->OnIterationEnd(cpu.memory());
  };
}

void ThorRdTarget::FinishRun(const sim::RunResult& result) {
  observation_.stop_reason = result.reason;
  observation_.instructions = card_.cpu().instret();
  observation_.iterations = card_.cpu().iteration_count();
  observation_.recovery_count = card_.cpu().recovery_count();
  if (result.reason == sim::StopReason::kEdm && result.edm.has_value()) {
    observation_.edm = result.edm;
  }
  if (environment_ != nullptr) {
    observation_.env_outputs = environment_->outputs();
  }
  run_finished_ = true;
}

// ---------------------------------------------------------------------
// Checkpoint-fork support.
// ---------------------------------------------------------------------

bool ThorRdTarget::SupportsCheckpointFork() const {
  return card_.options().link_fault_probability == 0.0;
}

Result<sim::Snapshot> ThorRdTarget::CaptureSnapshot() {
  if (!card_.initialized()) {
    return FailedPreconditionError("test card not initialized");
  }
  sim::Snapshot snapshot;
  snapshot.instret = card_.cpu().instret();
  snapshot.cpu = card_.cpu().CaptureState();
  snapshot.tap = card_.tap().CaptureState();
  if (environment_ != nullptr) {
    snapshot.extras["environment"] = environment_->CaptureState();
  }
  return snapshot;
}

Status ThorRdTarget::RestoreSnapshot(const sim::Snapshot& snapshot) {
  if (!card_.initialized()) {
    return FailedPreconditionError("test card not initialized");
  }
  if (!snapshot.cpu.has_value() || !snapshot.tap.has_value()) {
    return InvalidArgumentError(
        "snapshot is missing CPU or TAP state for target '" + name_ + "'");
  }
  RETURN_IF_ERROR(card_.cpu().RestoreState(*snapshot.cpu));
  card_.tap().RestoreState(*snapshot.tap);
  if (environment_ != nullptr) {
    const auto blob = snapshot.extras.find("environment");
    RETURN_IF_ERROR(environment_->RestoreState(
        blob != snapshot.extras.end() ? blob->second
                                      : std::vector<std::uint8_t>{}));
  }
  return Status::Ok();
}

Status ThorRdTarget::RunToTerminationRecordingCheckpoints() {
  const EffectiveTermination term = ResolveTermination();
  {
    ASSIGN_OR_RETURN(sim::Snapshot boot, CaptureSnapshot());
    checkpoint_sink_->push_back(std::move(boot));
  }
  for (;;) {
    const std::uint64_t remaining = RemainingBudget(term);
    if (remaining == 0) {
      // The budget expired exactly on a stride boundary; report what a
      // single un-chunked run would have reported.
      sim::RunResult result;
      result.reason = sim::StopReason::kBudgetExhausted;
      result.instructions_executed = 0;
      FinishRun(result);
      return Status::Ok();
    }
    const std::uint64_t instret = card_.cpu().instret();
    const std::uint64_t to_boundary =
        checkpoint_stride_ - instret % checkpoint_stride_;
    const sim::RunResult result =
        card_.Run(std::min(remaining, to_boundary), term.max_iterations,
                  IterationCallback());
    if (result.reason != sim::StopReason::kBudgetExhausted) {
      FinishRun(result);
      return Status::Ok();
    }
    if (RemainingBudget(term) == 0) {
      FinishRun(result);
      return Status::Ok();
    }
    ASSIGN_OR_RETURN(sim::Snapshot snapshot, CaptureSnapshot());
    checkpoint_sink_->push_back(std::move(snapshot));
  }
}

Status ThorRdTarget::MakeReferenceRun() {
  if (checkpoint_sink_ == nullptr || checkpoint_stride_ == 0) {
    return TargetSystemInterface::MakeReferenceRun();
  }
  // The Fig. 2 reference sequence with waitForTermination replaced by
  // the chunked recording loop. The chunks only add debug-port run
  // commands, which no observation field sees, so the produced golden
  // observation is bit-identical to the un-chunked run's.
  observation_ = Observation{};
  RETURN_IF_ERROR(initTestCard());
  RETURN_IF_ERROR(loadWorkload());
  RETURN_IF_ERROR(writeMemory());
  RETURN_IF_ERROR(runWorkload());
  RETURN_IF_ERROR(RunToTerminationRecordingCheckpoints());
  RETURN_IF_ERROR(readMemory());
  RETURN_IF_ERROR(readScanChain());
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Abstract operations (paper Fig. 3).
// ---------------------------------------------------------------------

Status ThorRdTarget::initTestCard() {
  RETURN_IF_ERROR(card_.Initialize());
  card_.cpu().ClearPostStepHooks();
  scan_images_.clear();
  breakpoint_hit_ = false;
  run_finished_ = false;
  link_retry_baseline_ = card_.link_stats().words_retried;
  return Status::Ok();
}

Status ThorRdTarget::loadWorkload() {
  if (!assembled_.has_value()) {
    return FailedPreconditionError("no workload installed; call "
                                   "SetWorkload first");
  }
  return Status::Ok();
}

Status ThorRdTarget::writeMemory() {
  if (start_snapshot_ != nullptr) {
    // Forked run: the snapshot carries the full memory image, so the
    // download would only be overwritten when runWorkload restores it.
    return Status::Ok();
  }
  // A fresh download: clear residue from the previous experiment first
  // (the workloads sort and scribble in place).
  card_.cpu().memory().ClearContents();
  return card_.LoadProgram(*assembled_);
}

Status ThorRdTarget::runWorkload() {
  if (start_snapshot_ != nullptr) {
    // Fork from the installed golden checkpoint instead of reset. The
    // debug unit and post-step hooks were already cleared by
    // initTestCard, matching a replay's state at the same instruction.
    RETURN_IF_ERROR(RestoreSnapshot(*start_snapshot_));
  } else {
    card_.ResetTarget(assembled_->entry);
    if (environment_ != nullptr) {
      environment_->Reset(card_.cpu().memory());
    }
  }
  // Workloads that define a trap_handler symbol run with EDM
  // trap-to-handler (best-effort recovery) instead of fail-stop.
  const auto handler = assembled_->symbols.find("trap_handler");
  card_.cpu().set_trap_handler(handler != assembled_->symbols.end(),
                               handler != assembled_->symbols.end()
                                   ? handler->second
                                   : 0);
  const bool want_trace = external_tracer_ != nullptr ||
                          logging_mode_ == LoggingMode::kDetail;
  card_.cpu().set_tracer(want_trace ? &trace_mux_ : nullptr);
  return Status::Ok();
}

Status ThorRdTarget::waitForBreakpoint() {
  const EffectiveTermination term = ResolveTermination();
  card_.SetBreakpoint(spec_.trigger);
  const sim::RunResult result = card_.Run(
      RemainingBudget(term), term.max_iterations, IterationCallback());
  if (result.reason == sim::StopReason::kBreakpoint) {
    breakpoint_hit_ = true;
  } else {
    // The workload ended before the trigger: record the outcome now;
    // the injection phases become no-ops and the experiment is
    // classified as "fault not injected".
    FinishRun(result);
  }
  return Status::Ok();
}

Status ThorRdTarget::readScanChain() {
  for (const sim::ScanChain& chain : card_.chains().chains) {
    ASSIGN_OR_RETURN(BitVector image, card_.ReadChain(chain.name()));
    scan_images_[chain.name()] = image;
    observation_.chain_images[chain.name()] = std::move(image);
  }
  return Status::Ok();
}

Status ThorRdTarget::injectFault() {
  const bool needs_trigger = spec_.technique != Technique::kSwifiPreRuntime;
  if (needs_trigger && !breakpoint_hit_) return Status::Ok();
  for (const FaultTarget& fault : spec_.targets) {
    switch (spec_.technique) {
      case Technique::kScifi:
        if (IsMemoryLocation(fault.location)) {
          return InvalidArgumentError(
              "SCIFI reaches scan elements, not memory: " + fault.location);
        }
        RETURN_IF_ERROR(InjectIntoImage(fault));
        break;
      case Technique::kSwifiPreRuntime:
        if (!IsMemoryLocation(fault.location)) {
          return InvalidArgumentError(
              "pre-runtime SWIFI reaches the memory image only: " +
              fault.location);
        }
        RETURN_IF_ERROR(InjectIntoMemory(fault));
        break;
      case Technique::kSwifiRuntime:
        if (IsMemoryLocation(fault.location)) {
          RETURN_IF_ERROR(InjectIntoMemory(fault));
        } else {
          RETURN_IF_ERROR(InjectIntoCpu(fault));
        }
        break;
    }
  }
  observation_.fault_was_injected = !spec_.targets.empty();
  return Status::Ok();
}

Status ThorRdTarget::writeScanChain() {
  if (!breakpoint_hit_) return Status::Ok();
  for (const auto& [chain_name, image] : scan_images_) {
    ASSIGN_OR_RETURN(const BitVector shifted_out,
                     card_.ExchangeChain(chain_name, image));
    (void)shifted_out;
  }
  return Status::Ok();
}

Status ThorRdTarget::waitForTermination() {
  if (run_finished_) return Status::Ok();
  const EffectiveTermination term = ResolveTermination();
  const sim::RunResult result = card_.Run(
      RemainingBudget(term), term.max_iterations, IterationCallback());
  FinishRun(result);
  return Status::Ok();
}

Status ThorRdTarget::readMemory() {
  if (workload_.output_length != 0) {
    ASSIGN_OR_RETURN(
        observation_.output_region,
        card_.DumpMemory(workload_.output_base, workload_.output_length));
  }
  observation_.emitted = card_.cpu().emitted();
  observation_.link_words_retried =
      card_.link_stats().words_retried - link_retry_baseline_;
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Fault application.
// ---------------------------------------------------------------------

Status ThorRdTarget::InjectIntoImage(const FaultTarget& fault) {
  const auto found = card_.chains().FindElement(fault.location);
  if (!found.has_value()) {
    return NotFoundError("no scan element named '" + fault.location + "'");
  }
  const auto [chain, element] = *found;
  if (element->access == sim::ScanAccess::kReadOnly) {
    return TargetFaultError("scan element '" + fault.location +
                            "' is observe-only; the chain write-back "
                            "would be ignored");
  }
  if (fault.bit >= element->width) {
    return OutOfRangeError(StrFormat("bit %u of %zu-bit element %s",
                                     fault.bit, element->width,
                                     fault.location.c_str()));
  }
  auto image = scan_images_.find(chain->name());
  if (image == scan_images_.end()) {
    return FailedPreconditionError("injectFault before readScanChain");
  }
  const std::size_t position = element->position + fault.bit;
  switch (spec_.model.kind) {
    case FaultModel::Kind::kTransientBitFlip:
      image->second.Flip(position);
      break;
    case FaultModel::Kind::kPermanentStuckAt:
      image->second.Set(position, spec_.model.stuck_to_one);
      InstallModelHook(element, fault.bit);
      break;
    case FaultModel::Kind::kIntermittentBitFlip:
      image->second.Flip(position);
      InstallModelHook(element, fault.bit);
      break;
  }
  return Status::Ok();
}

Status ThorRdTarget::InjectIntoCpu(const FaultTarget& fault) {
  const auto found = card_.chains().FindElement(fault.location);
  if (!found.has_value()) {
    return NotFoundError("no scan element named '" + fault.location + "'");
  }
  const sim::ScanElement* element = found->second;
  if (element->access == sim::ScanAccess::kReadOnly) {
    return TargetFaultError("scan element '" + fault.location +
                            "' is observe-only");
  }
  if (fault.bit >= element->width) {
    return OutOfRangeError(StrFormat("bit %u of %zu-bit element %s",
                                     fault.bit, element->width,
                                     fault.location.c_str()));
  }
  sim::Cpu& cpu = card_.cpu();
  std::uint64_t value = element->get(cpu);
  switch (spec_.model.kind) {
    case FaultModel::Kind::kTransientBitFlip:
      value ^= std::uint64_t{1} << fault.bit;
      break;
    case FaultModel::Kind::kPermanentStuckAt:
      if (spec_.model.stuck_to_one) {
        value |= std::uint64_t{1} << fault.bit;
      } else {
        value &= ~(std::uint64_t{1} << fault.bit);
      }
      InstallModelHook(element, fault.bit);
      break;
    case FaultModel::Kind::kIntermittentBitFlip:
      value ^= std::uint64_t{1} << fault.bit;
      InstallModelHook(element, fault.bit);
      break;
  }
  element->set(cpu, value);
  return Status::Ok();
}

Status ThorRdTarget::InjectIntoMemory(const FaultTarget& fault) {
  ASSIGN_OR_RETURN(const std::uint32_t address,
                   ParseMemoryLocation(fault.location));
  if (fault.bit > 7) {
    return OutOfRangeError(
        StrFormat("bit %u of byte at 0x%08x", fault.bit, address));
  }
  sim::Memory& memory = card_.cpu().memory();
  switch (spec_.model.kind) {
    case FaultModel::Kind::kTransientBitFlip:
      return card_.FlipMemoryBit(address, fault.bit);
    case FaultModel::Kind::kPermanentStuckAt: {
      std::uint8_t byte = 0;
      if (!memory.Peek(address, &byte)) {
        return NotFoundError(
            StrFormat("no memory mapped at 0x%08x", address));
      }
      const std::uint8_t mask =
          static_cast<std::uint8_t>(1u << fault.bit);
      byte = spec_.model.stuck_to_one
                 ? static_cast<std::uint8_t>(byte | mask)
                 : static_cast<std::uint8_t>(byte & ~mask);
      (void)memory.Poke(address, byte);
      InstallMemoryModelHook(address, fault.bit);
      return Status::Ok();
    }
    case FaultModel::Kind::kIntermittentBitFlip:
      RETURN_IF_ERROR(card_.FlipMemoryBit(address, fault.bit));
      InstallMemoryModelHook(address, fault.bit);
      return Status::Ok();
  }
  return InvalidArgumentError("unknown fault model");
}

void ThorRdTarget::InstallModelHook(const sim::ScanElement* element,
                                    std::uint32_t bit) {
  const FaultModel model = spec_.model;
  if (model.kind == FaultModel::Kind::kPermanentStuckAt) {
    card_.cpu().AddPostStepHook([element, bit, model](sim::Cpu& cpu) {
      std::uint64_t value = element->get(cpu);
      if (model.stuck_to_one) {
        value |= std::uint64_t{1} << bit;
      } else {
        value &= ~(std::uint64_t{1} << bit);
      }
      element->set(cpu, value);
    });
    return;
  }
  // Intermittent: re-flip every `period` instructions, `occurrences`
  // times in total (the initial flip counts as the first occurrence).
  const std::uint64_t period = model.period != 0 ? model.period : 1;
  std::uint32_t remaining =
      model.occurrences > 1 ? model.occurrences - 1 : 0;
  std::uint64_t next = card_.cpu().instret() + period;
  card_.cpu().AddPostStepHook(
      [element, bit, remaining, next, period](sim::Cpu& cpu) mutable {
        if (remaining == 0 || cpu.instret() < next) return;
        element->set(cpu, element->get(cpu) ^ (std::uint64_t{1} << bit));
        next += period;
        --remaining;
      });
}

void ThorRdTarget::InstallMemoryModelHook(std::uint32_t address,
                                          std::uint32_t bit) {
  const FaultModel model = spec_.model;
  if (model.kind == FaultModel::Kind::kPermanentStuckAt) {
    card_.cpu().AddPostStepHook([address, bit, model](sim::Cpu& cpu) {
      std::uint8_t byte = 0;
      if (!cpu.memory().Peek(address, &byte)) return;
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << bit);
      byte = model.stuck_to_one ? static_cast<std::uint8_t>(byte | mask)
                                : static_cast<std::uint8_t>(byte & ~mask);
      (void)cpu.memory().Poke(address, byte);
    });
    return;
  }
  const std::uint64_t period = model.period != 0 ? model.period : 1;
  std::uint32_t remaining =
      model.occurrences > 1 ? model.occurrences - 1 : 0;
  std::uint64_t next = card_.cpu().instret() + period;
  const std::uint64_t step = period;
  card_.cpu().AddPostStepHook(
      [address, bit, remaining, next, step](sim::Cpu& cpu) mutable {
        if (remaining == 0 || cpu.instret() < next) return;
        (void)cpu.memory().FlipBit(address, static_cast<unsigned>(bit));
        next += step;
        --remaining;
      });
}

// ---------------------------------------------------------------------
// Trace fan-out.
// ---------------------------------------------------------------------

void ThorRdTarget::TraceMux::OnInstructionRetired(
    const sim::Cpu& cpu, const sim::Instruction& instruction,
    std::uint64_t time, std::uint32_t pc) {
  if (target_->external_tracer_ != nullptr) {
    target_->external_tracer_->OnInstructionRetired(cpu, instruction, time,
                                                    pc);
  }
  if (target_->logging_mode_ == LoggingMode::kDetail) {
    const sim::ScanChain* internal =
        target_->card_.chains().FindChain("internal");
    target_->observation_.detail_trace.emplace_back(
        time, internal->Capture(cpu));
  }
}

void ThorRdTarget::TraceMux::OnRegisterRead(unsigned reg,
                                            std::uint64_t time) {
  if (target_->external_tracer_ != nullptr) {
    target_->external_tracer_->OnRegisterRead(reg, time);
  }
}

void ThorRdTarget::TraceMux::OnRegisterWrite(unsigned reg,
                                             std::uint32_t old_value,
                                             std::uint32_t new_value,
                                             std::uint64_t time) {
  if (target_->external_tracer_ != nullptr) {
    target_->external_tracer_->OnRegisterWrite(reg, old_value, new_value,
                                               time);
  }
}

void ThorRdTarget::TraceMux::OnMemoryRead(std::uint32_t address,
                                          unsigned bytes,
                                          std::uint64_t time) {
  if (target_->external_tracer_ != nullptr) {
    target_->external_tracer_->OnMemoryRead(address, bytes, time);
  }
}

void ThorRdTarget::TraceMux::OnMemoryWrite(std::uint32_t address,
                                           unsigned bytes,
                                           std::uint32_t value,
                                           std::uint64_t time) {
  if (target_->external_tracer_ != nullptr) {
    target_->external_tracer_->OnMemoryWrite(address, bytes, value, time);
  }
}

std::unique_ptr<ThorRdTarget> MakeThorTarget() {
  TestCardOptions options;
  options.cpu_config.edm.SetEnabled(sim::EdmType::kIcacheParity, false);
  options.cpu_config.edm.SetEnabled(sim::EdmType::kDcacheParity, false);
  return std::make_unique<ThorRdTarget>(options, "thor");
}

}  // namespace goofi::target
