// The Thor RD target system: the paper's rad-hard microprocessor
// board, reached through the simulated test card.
//
// Binds src/sim's CPU, scan chains, TAP controller and debug unit to
// the abstract TargetSystemInterface: SCIFI goes through the TAP
// (capture -> flip -> write back), pre-runtime SWIFI flips bits in the
// downloaded memory image, runtime SWIFI writes registers and memory
// through the debug port at the trigger.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/assembler.h"
#include "sim/tracer.h"
#include "target/environment.h"
#include "target/fault_injection_algorithms.h"
#include "target/test_card.h"

namespace goofi::target {

class ThorRdTarget : public TargetSystemInterface {
 public:
  ThorRdTarget() : ThorRdTarget(TestCardOptions{}) {}
  explicit ThorRdTarget(TestCardOptions options)
      : ThorRdTarget(options, "thor_rd") {}
  ThorRdTarget(TestCardOptions options, std::string name);

  const std::string& target_name() const override { return name_; }
  std::vector<LocationInfo> ListLocations() const override;

  // Assembles the workload eagerly so syntax errors surface at
  // configuration time, not mid-campaign.
  Status SetWorkload(WorkloadSpec workload) override;

  TestCard& test_card() { return card_; }
  const TestCard& test_card() const { return card_; }
  const Environment* environment() const { return environment_.get(); }

  // Checkpoint-fork support. Snapshots cover the CPU (with memory image
  // and caches), the TAP controller and the environment model; the card
  // must run a clean link — link faults draw from the transport RNG per
  // operation, so a chunked reference run would diverge from replay.
  bool SupportsCheckpointFork() const override;
  Result<sim::Snapshot> CaptureSnapshot() override;
  Status RestoreSnapshot(const sim::Snapshot& snapshot) override;

  // With checkpoint recording armed, the reference run executes in
  // stride-sized chunks, capturing a snapshot at each stride boundary.
  Status MakeReferenceRun() override;

 protected:
  Status initTestCard() override;
  Status loadWorkload() override;
  Status writeMemory() override;
  Status runWorkload() override;
  Status waitForBreakpoint() override;
  Status readScanChain() override;
  Status injectFault() override;
  Status writeScanChain() override;
  Status waitForTermination() override;
  Status readMemory() override;

  // Fault-application helpers, shared with derived targets (the cache
  // hierarchy target delegates non-cache locations to these): apply one
  // fault model instance to a scan element (directly on the CPU for
  // runtime SWIFI) or to target memory.
  Status InjectIntoImage(const FaultTarget& fault);     // SCIFI snapshot
  Status InjectIntoCpu(const FaultTarget& fault);       // runtime SWIFI
  Status InjectIntoMemory(const FaultTarget& fault);    // SWIFI variants
  bool breakpoint_hit() const { return breakpoint_hit_; }

 private:
  // Fans the CPU's trace events out to the campaign's external tracer
  // and, in detail mode, captures the internal chain image after every
  // retired instruction (paper §3.3).
  class TraceMux : public sim::Tracer {
   public:
    explicit TraceMux(ThorRdTarget* target) : target_(target) {}
    void OnInstructionRetired(const sim::Cpu& cpu,
                              const sim::Instruction& instruction,
                              std::uint64_t time,
                              std::uint32_t pc) override;
    void OnRegisterRead(unsigned reg, std::uint64_t time) override;
    void OnRegisterWrite(unsigned reg, std::uint32_t old_value,
                         std::uint32_t new_value,
                         std::uint64_t time) override;
    void OnMemoryRead(std::uint32_t address, unsigned bytes,
                      std::uint64_t time) override;
    void OnMemoryWrite(std::uint32_t address, unsigned bytes,
                       std::uint32_t value, std::uint64_t time) override;

   private:
    ThorRdTarget* target_;
  };

  struct EffectiveTermination {
    std::uint64_t max_instructions = 0;
    std::uint64_t max_iterations = 0;
  };
  EffectiveTermination ResolveTermination() const;
  std::uint64_t RemainingBudget(const EffectiveTermination& term) const;
  std::function<bool(sim::Cpu&)> IterationCallback();
  void FinishRun(const sim::RunResult& result);
  // waitForTermination in checkpoint_stride_-sized chunks, recording a
  // snapshot into checkpoint_sink_ at every stride boundary reached.
  Status RunToTerminationRecordingCheckpoints();

  void InstallModelHook(const sim::ScanElement* element,
                        std::uint32_t bit);
  void InstallMemoryModelHook(std::uint32_t address, std::uint32_t bit);

  std::string name_;
  TestCard card_;
  TraceMux trace_mux_{this};
  std::optional<sim::AssembledProgram> assembled_;
  std::unique_ptr<Environment> environment_;
  // SCIFI working copies of the chain images between readScanChain and
  // writeScanChain.
  std::map<std::string, BitVector> scan_images_;
  bool breakpoint_hit_ = false;
  bool run_finished_ = false;
  // The card's cumulative link-retry counter at initTestCard time;
  // readMemory records the per-run delta into the observation.
  std::uint64_t link_retry_baseline_ = 0;
};

// The commercial (non rad-hard) Thor: the same board with the cache
// parity mechanisms absent. Registered as "thor" alongside "thor_rd".
std::unique_ptr<ThorRdTarget> MakeThorTarget();

}  // namespace goofi::target
