#include "target/test_card.h"

#include "target/io_map.h"
#include "util/strings.h"

namespace goofi::target {

TestCard::TestCard(TestCardOptions options)
    : options_(options),
      cpu_(options.cpu_config),
      chains_(sim::BuildThorRdScanChains(cpu_)),
      tap_(&chains_, &cpu_),
      link_rng_(options.link_fault_seed) {}

Status TestCard::Initialize() {
  if (!initialized_) {
    RETURN_IF_ERROR(cpu_.memory().AddSegment(
        {"code", kCodeBase, kCodeSize, true, false, true, false}));
    RETURN_IF_ERROR(cpu_.memory().AddSegment(
        {"data", kDataBase, kDataSize, true, true, false, false}));
    RETURN_IF_ERROR(cpu_.memory().AddSegment(
        {"stack", kStackBase, kStackSize, true, true, false, false}));
    RETURN_IF_ERROR(cpu_.memory().AddSegment(
        {"io", kIoBase, kIoSize, true, true, false, true}));
    initialized_ = true;
  }
  ResetTarget(0);
  tap_.Reset();
  return Status::Ok();
}

void TestCard::Transfer(std::size_t bytes) {
  ++link_stats_.commands;
  link_stats_.latency_micros += options_.link_latency_micros;
  const std::size_t words = (bytes + 3) / 4;
  std::size_t retried = 0;
  if (options_.link_fault_probability > 0.0) {
    for (std::size_t w = 0; w < words; ++w) {
      // A corrupted word fails the link parity check and is resent; a
      // handful of attempts always suffices in practice, and capping
      // them keeps a probability-1.0 test configuration terminating.
      for (int attempt = 0; attempt < 3; ++attempt) {
        if (!link_rng_.NextBool(options_.link_fault_probability)) break;
        ++retried;
      }
    }
  }
  link_stats_.words_retried += retried;
  link_stats_.bytes_transferred += words * 4 + retried * 4;
  link_stats_.latency_micros += retried * options_.link_latency_micros;
}

void TestCard::ResetTarget(std::uint32_t entry) {
  Transfer(4);
  cpu_.Reset(entry);
  debug_unit_.Clear();
}

Status TestCard::LoadProgram(const sim::AssembledProgram& program) {
  Transfer(program.ByteSize());
  return program.LoadInto(cpu_.memory());
}

Status TestCard::WriteWord(std::uint32_t address, std::uint32_t value) {
  Transfer(8);
  const sim::MemFault fault = cpu_.memory().WriteWord(address, value);
  if (fault != sim::MemFault::kNone) {
    return TargetFaultError(
        StrFormat("debug-port write fault at 0x%08x", address));
  }
  return Status::Ok();
}

Result<std::uint32_t> TestCard::ReadWord(std::uint32_t address) {
  Transfer(8);
  std::uint32_t value = 0;
  const sim::MemFault fault =
      cpu_.memory().ReadWord(address, &value, sim::AccessKind::kRead);
  if (fault != sim::MemFault::kNone) {
    return TargetFaultError(
        StrFormat("debug-port read fault at 0x%08x", address));
  }
  return value;
}

Result<std::vector<std::uint8_t>> TestCard::DumpMemory(
    std::uint32_t address, std::uint32_t length) {
  Transfer(length);
  return cpu_.memory().DumpRange(address, length);
}

Status TestCard::FlipMemoryBit(std::uint32_t address, std::uint32_t bit) {
  Transfer(8);
  if (bit > 7) {
    return OutOfRangeError(StrFormat("bit %u of a byte", bit));
  }
  if (!cpu_.memory().FlipBit(address, static_cast<unsigned>(bit))) {
    return NotFoundError(
        StrFormat("no memory mapped at 0x%08x", address));
  }
  return Status::Ok();
}

int TestCard::SetBreakpoint(const sim::Breakpoint& breakpoint) {
  Transfer(16);
  return debug_unit_.AddBreakpoint(breakpoint);
}

void TestCard::ClearBreakpoints() {
  Transfer(4);
  debug_unit_.Clear();
}

sim::RunResult TestCard::Run(
    std::uint64_t max_instructions, std::uint64_t max_iterations,
    const std::function<bool(sim::Cpu&)>& on_iteration) {
  Transfer(4);
  return sim::Run(cpu_, &debug_unit_, max_instructions, max_iterations,
                  on_iteration);
}

Result<sim::TapInstruction> TestCard::ChainInstruction(
    const std::string& chain_name) const {
  if (chain_name == "internal") return sim::TapInstruction::kScanInternal;
  if (chain_name == "boundary") return sim::TapInstruction::kScanBoundary;
  return NotFoundError("no scan chain named '" + chain_name + "'");
}

Result<BitVector> TestCard::ReadChain(const std::string& chain_name) {
  ASSIGN_OR_RETURN(const sim::TapInstruction instruction,
                   ChainInstruction(chain_name));
  const sim::ScanChain* chain = chains_.FindChain(chain_name);
  Transfer((chain->bit_length() + 7) / 8);
  tap_.LoadInstruction(instruction);
  return tap_.ReadDataRegister();
}

Result<BitVector> TestCard::ExchangeChain(const std::string& chain_name,
                                          const BitVector& image) {
  ASSIGN_OR_RETURN(const sim::TapInstruction instruction,
                   ChainInstruction(chain_name));
  const sim::ScanChain* chain = chains_.FindChain(chain_name);
  if (image.size() != chain->bit_length()) {
    return InvalidArgumentError(
        StrFormat("image is %zu bits, chain '%s' is %zu", image.size(),
                  chain_name.c_str(), chain->bit_length()));
  }
  Transfer(2 * ((chain->bit_length() + 7) / 8));
  tap_.LoadInstruction(instruction);
  return tap_.ExchangeDataRegister(image);
}

}  // namespace goofi::target
