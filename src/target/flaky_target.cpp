#include "target/flaky_target.h"

#include <chrono>
#include <limits>
#include <optional>
#include <thread>
#include <vector>

#include "util/strings.h"

namespace goofi::target {

namespace {

constexpr std::uint64_t kNoIndex = std::numeric_limits<std::uint64_t>::max();

// Forwards every run to a real target, failing scripted attempts at
// the RunExperiment boundary — the simulated equivalent of the
// host<->test-card transport dying under the tool's feet.
class FlakyTarget : public TargetSystemInterface {
 public:
  FlakyTarget(std::unique_ptr<TargetSystemInterface> inner,
              std::shared_ptr<FlakyScript> script)
      : inner_(std::move(inner)), script_(std::move(script)) {}

  const std::string& target_name() const override {
    return inner_->target_name();
  }
  std::vector<LocationInfo> ListLocations() const override {
    return inner_->ListLocations();
  }
  Status SetWorkload(WorkloadSpec workload) override {
    return inner_->SetWorkload(std::move(workload));
  }

  Status MakeReferenceRun() override {
    SyncDriverState();
    return inner_->MakeReferenceRun();
  }

  Status RunExperiment() override {
    SyncDriverState();
    const std::uint64_t index = FlakyExperimentIndex(spec_.name);
    if (index != kNoIndex) {
      std::optional<FlakyFault> fault;
      {
        std::lock_guard<std::mutex> lock(script_->mutex);
        const std::uint32_t attempt = ++script_->attempts_seen[index];
        const auto always = script_->always.find(index);
        if (always != script_->always.end()) {
          fault = always->second;
        } else {
          const auto scripted = script_->faults.find({index, attempt});
          if (scripted != script_->faults.end()) fault = scripted->second;
        }
      }
      if (fault.has_value()) return InjectScriptedFault(*fault);
    }
    return inner_->RunExperiment();
  }

  Observation TakeObservation() override {
    return inner_->TakeObservation();
  }

  // Checkpoint-fork plumbing is pure pass-through: scripted transport
  // faults strike whole runs, so the inner target owns all snapshots.
  bool SupportsCheckpointFork() const override {
    return inner_->SupportsCheckpointFork();
  }
  Result<sim::Snapshot> CaptureSnapshot() override {
    return inner_->CaptureSnapshot();
  }
  Status RestoreSnapshot(const sim::Snapshot& snapshot) override {
    return inner_->RestoreSnapshot(snapshot);
  }
  void set_checkpoint_recording(
      std::uint64_t stride, std::vector<sim::Snapshot>* sink) override {
    inner_->set_checkpoint_recording(stride, sink);
  }
  void set_start_snapshot(
      std::shared_ptr<const sim::Snapshot> snapshot) override {
    inner_->set_start_snapshot(std::move(snapshot));
  }

 protected:
  // Never reached: the public template methods above forward to the
  // inner target wholesale, so the Fig. 3 sequence runs there.
  Status initTestCard() override { return Unreachable(); }
  Status loadWorkload() override { return Unreachable(); }
  Status writeMemory() override { return Unreachable(); }
  Status runWorkload() override { return Unreachable(); }
  Status waitForBreakpoint() override { return Unreachable(); }
  Status readScanChain() override { return Unreachable(); }
  Status injectFault() override { return Unreachable(); }
  Status writeScanChain() override { return Unreachable(); }
  Status waitForTermination() override { return Unreachable(); }
  Status readMemory() override { return Unreachable(); }

 private:
  static Status Unreachable() {
    return UnimplementedError(
        "FlakyTarget forwards whole runs; drive it through "
        "MakeReferenceRun/RunExperiment");
  }

  // The decorator's own driver state (spec, logging mode, tracer) is
  // what the campaign machinery set; push it down before every run.
  void SyncDriverState() {
    inner_->set_experiment(spec_);
    inner_->set_logging_mode(logging_mode_);
    inner_->set_external_tracer(external_tracer_);
  }

  Status InjectScriptedFault(FlakyFault fault) {
    switch (fault) {
      case FlakyFault::kIo:
        ++script_->faults_injected;
        return IoError("scripted transport fault on the host<->test-card "
                       "link");
      case FlakyFault::kTargetFault:
        ++script_->faults_injected;
        return TargetFaultError("scripted target fault");
      case FlakyFault::kHang:
        ++script_->hangs_injected;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(script_->hang_ms));
        return IoError("host<->test-card link wedged (scripted hang)");
    }
    return InvalidArgumentError("unknown scripted fault kind");
  }

  std::unique_ptr<TargetSystemInterface> inner_;
  std::shared_ptr<FlakyScript> script_;
};

Result<FlakyFault> ParseFaultKind(const std::string& kind) {
  if (kind == "io") return FlakyFault::kIo;
  if (kind == "target_fault") return FlakyFault::kTargetFault;
  if (kind == "hang") return FlakyFault::kHang;
  return InvalidArgumentError("unknown flaky fault kind '" + kind +
                              "' (io, target_fault, hang)");
}

}  // namespace

std::uint64_t FlakyExperimentIndex(const std::string& experiment_name) {
  const std::size_t at = experiment_name.find("/exp");
  if (at == std::string::npos) return kNoIndex;
  std::size_t digit = at + 4;
  std::uint64_t index = 0;
  bool any = false;
  while (digit < experiment_name.size() &&
         experiment_name[digit] >= '0' && experiment_name[digit] <= '9') {
    index = index * 10 + static_cast<std::uint64_t>(
                             experiment_name[digit] - '0');
    ++digit;
    any = true;
  }
  return any ? index : kNoIndex;
}

Result<std::shared_ptr<FlakyScript>> ParseFlakyScript(
    const std::string& text) {
  auto script = std::make_shared<FlakyScript>();
  std::vector<std::string> entries;
  for (const std::string& chunk : SplitString(text, ';')) {
    for (const std::string& entry : SplitString(chunk, ',')) {
      if (!entry.empty()) entries.push_back(entry);
    }
  }
  for (const std::string& entry : entries) {
    if (StartsWith(entry, "hang_ms=")) {
      const auto value = ParseUint64(entry.substr(8));
      if (!value) {
        return InvalidArgumentError("bad flaky entry '" + entry + "'");
      }
      script->hang_ms = *value;
      continue;
    }
    const std::size_t at = entry.find('@');
    if (at == std::string::npos) {
      return InvalidArgumentError("bad flaky entry '" + entry +
                                  "' (want <kind>@<experiment>[:<attempt>])");
    }
    ASSIGN_OR_RETURN(const FlakyFault kind,
                     ParseFaultKind(entry.substr(0, at)));
    const std::string where = entry.substr(at + 1);
    const std::size_t colon = where.find(':');
    const auto experiment =
        ParseUint64(colon == std::string::npos ? where
                                               : where.substr(0, colon));
    if (!experiment) {
      return InvalidArgumentError("bad flaky entry '" + entry + "'");
    }
    if (colon != std::string::npos && where.substr(colon + 1) == "*") {
      script->always[*experiment] = kind;
      continue;
    }
    std::uint32_t attempt = 1;
    if (colon != std::string::npos) {
      const auto parsed = ParseUint64(where.substr(colon + 1));
      if (!parsed || *parsed == 0 || *parsed > 0xffffffffull) {
        return InvalidArgumentError("bad flaky entry '" + entry + "'");
      }
      attempt = static_cast<std::uint32_t>(*parsed);
    }
    script->faults[{*experiment, attempt}] = kind;
  }
  return script;
}

TargetFactory MakeFlakyTargetFactory(TargetFactory inner,
                                     std::shared_ptr<FlakyScript> script) {
  return [inner = std::move(inner), script = std::move(script)]()
             -> Result<std::unique_ptr<TargetSystemInterface>> {
    ASSIGN_OR_RETURN(std::unique_ptr<TargetSystemInterface> target, inner());
    return std::unique_ptr<TargetSystemInterface>(
        std::make_unique<FlakyTarget>(std::move(target), script));
  };
}

}  // namespace goofi::target
