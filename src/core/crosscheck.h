// Static-vs-dynamic cross-check: the static analyzer's soundness gate.
//
// analysis::StaticLiveness prunes fault locations before any run; the
// dynamic core::PreInjectionAnalysis filters (location, time) points
// using the reference run's access trace. For the pruning to be sound
// the static answer must be a SUPERSET of the dynamic one on every
// fault-free run:
//
//   dynamic live(reg, t)   ==>  static MayBeLiveAtPc(reg, pc_at(t))
//   dynamic live(word, t)  ==>  static MayWordHoldLiveData(word)
//   and every executed pc  ==>  statically reachable.
//
// CrossCheckWorkload runs the workload's reference run on a Thor RD
// target, builds both analyses and reports every violation;
// tests/analysis/crosscheck_test.cpp fails if any built-in workload
// produces one.
// The equivalence analogue (analysis/equivalence.h) has its own, fully
// dynamic gate: a class claims every member injection produces the
// identical observation, so CrossCheckEquivalenceCampaign re-injects
// every member of logged classes and fails loudly on any class whose
// members disagree with the representative's stored observation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/status.h"

namespace goofi::core {

struct CrossCheckViolation {
  std::string workload;
  // "register", "memory", "reachability" or "first-use".
  std::string kind;
  std::uint64_t time = 0;
  std::uint32_t pc = 0;
  // Register number or word address, per kind.
  std::uint32_t subject = 0;

  std::string ToString() const;
};

// Reference-runs the named built-in workload and compares the two
// analyses. Ok with an empty vector = the superset invariant holds.
Result<std::vector<CrossCheckViolation>> CrossCheckWorkload(
    const std::string& workload_name);

// All built-in workloads; error describes every violation found.
Status CrossCheckBuiltinWorkloads();

// ---- equivalence-class soundness audit ---------------------------------

struct EquivalenceAudit {
  std::size_t classes_checked = 0;    // representative rows audited
  std::size_t members_injected = 0;   // injections actually re-run
  std::uint64_t space_weight = 0;     // summed weight of audited classes
};

// Exhaustively re-inject every member of the equivalence classes a
// `static_analysis = equivalence` campaign logged (representative rows
// carry the class id), on a fresh registry-built target, and compare
// each member's observation with the representative's stored one.
// `max_classes` bounds the audit (0 = every class); classes are taken
// in logged order. Errors with the offending class id and member time
// if any class is outcome-heterogeneous — the claim the whole
// extrapolation rests on.
Result<EquivalenceAudit> CrossCheckEquivalenceCampaign(
    db::Database& database, const std::string& campaign_name,
    std::size_t max_classes = 0);

}  // namespace goofi::core
