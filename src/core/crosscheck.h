// Static-vs-dynamic cross-check: the static analyzer's soundness gate.
//
// analysis::StaticLiveness prunes fault locations before any run; the
// dynamic core::PreInjectionAnalysis filters (location, time) points
// using the reference run's access trace. For the pruning to be sound
// the static answer must be a SUPERSET of the dynamic one on every
// fault-free run:
//
//   dynamic live(reg, t)   ==>  static MayBeLiveAtPc(reg, pc_at(t))
//   dynamic live(word, t)  ==>  static MayWordHoldLiveData(word)
//   and every executed pc  ==>  statically reachable.
//
// CrossCheckWorkload runs the workload's reference run on a Thor RD
// target, builds both analyses and reports every violation;
// tests/analysis/crosscheck_test.cpp fails if any built-in workload
// produces one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace goofi::core {

struct CrossCheckViolation {
  std::string workload;
  // "register", "memory" or "reachability".
  std::string kind;
  std::uint64_t time = 0;
  std::uint32_t pc = 0;
  // Register number or word address, per kind.
  std::uint32_t subject = 0;

  std::string ToString() const;
};

// Reference-runs the named built-in workload and compares the two
// analyses. Ok with an empty vector = the superset invariant holds.
Result<std::vector<CrossCheckViolation>> CrossCheckWorkload(
    const std::string& workload_name);

// All built-in workloads; error describes every violation found.
Status CrossCheckBuiltinWorkloads();

}  // namespace goofi::core
