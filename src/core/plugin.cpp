#include "core/plugin.h"

#include <dlfcn.h>

#include <cstring>

namespace goofi::core {

Status LoadTargetPlugin(const std::string& path, TargetRegistry& registry) {
  void* handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* error = dlerror();
    return IoError("dlopen('" + path + "') failed: " +
                   (error != nullptr ? error : "unknown error"));
  }
  using AbiFn = const char* (*)();
  using RegisterFn = void (*)(TargetRegistry*);
  // POSIX requires the dance through memcpy — dlsym returns void*.
  AbiFn abi_fn = nullptr;
  void* abi_sym = dlsym(handle, "goofi_plugin_abi");
  std::memcpy(&abi_fn, &abi_sym, sizeof abi_fn);
  if (abi_fn == nullptr) {
    dlclose(handle);
    return InvalidArgumentError("plugin '" + path +
                                "' exports no goofi_plugin_abi");
  }
  const char* abi = abi_fn();
  if (abi == nullptr || std::strcmp(abi, kGoofiPluginAbi) != 0) {
    dlclose(handle);
    return FailedPreconditionError(
        "plugin '" + path + "' has ABI '" +
        (abi != nullptr ? abi : "(null)") + "', tool expects '" +
        kGoofiPluginAbi + "'");
  }
  RegisterFn register_fn = nullptr;
  void* register_sym = dlsym(handle, "goofi_register_targets");
  std::memcpy(&register_fn, &register_sym, sizeof register_fn);
  if (register_fn == nullptr) {
    dlclose(handle);
    return InvalidArgumentError("plugin '" + path +
                                "' exports no goofi_register_targets");
  }
  register_fn(&registry);
  // Deliberately keep the handle open: registered factories point into
  // the plugin's code.
  return Status::Ok();
}

}  // namespace goofi::core
