// Golden-run checkpoint memoization for checkpoint-fork execution.
//
// PrepareCampaignRun records snapshots of the reference run once per
// (campaign, workload); the campaign runners then start each experiment
// from the checkpoint nearest below its injection trigger instead of
// replaying the workload from reset. The store is immutable during the
// experiment loop, so the sharded runner's workers all read one shared
// instance; each worker fronts it with its own CheckpointCache, which
// memoizes the last lookup (trigger times drawn from one window usually
// land in few distinct stride intervals) and tallies what forking saved.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/snapshot.h"

namespace goofi::core {

class CheckpointStore {
 public:
  // Snapshots must arrive in increasing instret order (the recording
  // loop produces them that way); duplicates of an instret are ignored.
  void Add(sim::Snapshot snapshot);

  bool empty() const { return snapshots_.empty(); }
  std::size_t size() const { return snapshots_.size(); }

  // The checkpoint with the largest instret <= trigger, or nullptr when
  // none qualifies (the experiment falls back to replay-from-reset).
  // `valid_lo`/`valid_hi` (optional) receive the half-open trigger
  // interval [lo, hi) the returned snapshot serves, for memoization.
  std::shared_ptr<const sim::Snapshot> NearestAtOrBelow(
      std::uint64_t trigger, std::uint64_t* valid_lo = nullptr,
      std::uint64_t* valid_hi = nullptr) const;

 private:
  std::vector<std::shared_ptr<const sim::Snapshot>> snapshots_;
};

// One worker's view of the shared store. Not thread-safe; every worker
// owns its own cache.
class CheckpointCache {
 public:
  // `store` may be null (checkpointing off): every lookup misses.
  explicit CheckpointCache(const CheckpointStore* store) : store_(store) {}

  // The snapshot to fork `trigger`'s experiment from (nullptr = replay
  // from reset). Tallies forks and the pre-trigger instructions the
  // fork skips.
  std::shared_ptr<const sim::Snapshot> ForTrigger(std::uint64_t trigger);

  std::uint64_t forks() const { return forks_; }
  std::uint64_t instructions_skipped() const {
    return instructions_skipped_;
  }

 private:
  const CheckpointStore* store_;
  std::shared_ptr<const sim::Snapshot> last_;
  std::uint64_t last_lo_ = 0;
  std::uint64_t last_hi_ = 0;
  std::uint64_t forks_ = 0;
  std::uint64_t instructions_skipped_ = 0;
};

}  // namespace goofi::core
