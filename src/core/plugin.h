// Dynamic loading of target-system plugins.
//
// The paper's tool is extended by compiling new TargetSystemInterface
// classes into the (Java) application; a C++ reproduction can go one
// step further and load them from shared libraries at run time. A
// plugin exports:
//
//   extern "C" const char* goofi_plugin_abi();           // must return kGoofiPluginAbi
//   extern "C" void goofi_register_targets(goofi::core::TargetRegistry*);
//
// The ABI-tag handshake catches mismatched builds before any C++ type
// crosses the boundary (the awkwardness of manual dynamic loading the
// reproduction notes call out — kept explicit rather than hidden).
#pragma once

#include <string>

#include "core/registry.h"
#include "util/status.h"

namespace goofi::core {

inline constexpr const char* kGoofiPluginAbi = "goofi-plugin-1";

// dlopen the library, verify the ABI tag, and let it register its
// targets. The handle is intentionally leaked (targets created from the
// plugin may outlive any scope we could tie it to).
Status LoadTargetPlugin(const std::string& path, TargetRegistry& registry);

}  // namespace goofi::core
