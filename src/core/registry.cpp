#include "core/registry.h"

#include "target/cache_target.h"
#include "target/thor_rd_target.h"

namespace goofi::core {

TargetRegistry& TargetRegistry::Instance() {
  static TargetRegistry* registry = new TargetRegistry();
  return *registry;
}

Status TargetRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty()) return InvalidArgumentError("target name must not be empty");
  if (!factory) return InvalidArgumentError("null target factory");
  for (const auto& [existing, unused] : factories_) {
    if (existing == name) {
      return AlreadyExistsError("target '" + name + "' already registered");
    }
  }
  factories_.emplace_back(name, std::move(factory));
  return Status::Ok();
}

bool TargetRegistry::Has(const std::string& name) const {
  for (const auto& [existing, unused] : factories_) {
    if (existing == name) return true;
  }
  return false;
}

Result<std::unique_ptr<target::TargetSystemInterface>> TargetRegistry::Create(
    const std::string& name) const {
  for (const auto& [existing, factory] : factories_) {
    if (existing == name) return factory();
  }
  return NotFoundError("no registered target '" + name + "'");
}

std::vector<std::string> TargetRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, unused] : factories_) names.push_back(name);
  return names;
}

void RegisterBuiltinTargets(TargetRegistry& registry) {
  if (!registry.Has("thor_rd")) {
    (void)registry.Register("thor_rd", []() {
      return std::make_unique<target::ThorRdTarget>();
    });
  }
  if (!registry.Has("thor")) {
    // The predecessor board of [10]: no cache parity checkers.
    (void)registry.Register("thor", []() {
      return std::unique_ptr<target::TargetSystemInterface>(
          target::MakeThorTarget());
    });
  }
  if (!registry.Has("cache_hierarchy")) {
    // Thor RD with access-path injection into the cache arrays.
    (void)registry.Register("cache_hierarchy", []() {
      return std::unique_ptr<target::TargetSystemInterface>(
          target::MakeCacheHierarchyTarget());
    });
  }
}

}  // namespace goofi::core
