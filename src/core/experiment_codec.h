// Serialization of ExperimentSpec into the `experimentData` attribute of
// LoggedSystemState ("contains information about the experiment such as
// the fault injection location"). The inverse enables the paper's
// parentExperiment workflow: re-running a logged experiment E1 in detail
// mode as E2 with identical campaign data.
#pragma once

#include <string>

#include "target/target_types.h"
#include "util/status.h"

namespace goofi::core {

std::string SerializeExperimentSpec(const target::ExperimentSpec& spec);
Result<target::ExperimentSpec> ParseExperimentSpec(const std::string& text);

std::string SerializeTrigger(const sim::Breakpoint& trigger);
Result<sim::Breakpoint> ParseTrigger(const std::string& text);

}  // namespace goofi::core
