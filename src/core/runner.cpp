#include "core/runner.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <thread>

#include "analysis/equivalence.h"
#include "analysis/static_liveness.h"
#include "core/experiment_codec.h"
#include "core/goofi_schema.h"
#include "sim/access_recorder.h"
#include "target/cache_target.h"
#include "target/workloads.h"
#include "util/strings.h"

namespace goofi::core {

using db::Row;
using db::Value;
using LocationInfo = target::TargetSystemInterface::LocationInfo;

CampaignRunner::CampaignRunner(db::Database* database,
                               target::TargetSystemInterface* target)
    : database_(database), target_(target) {}

Result<target::WorkloadSpec> ConfigureTargetWorkload(
    const CampaignConfig& config, target::TargetSystemInterface* target) {
  if (config.target != target->target_name()) {
    return FailedPreconditionError(
        "campaign '" + config.name + "' is for target '" + config.target +
        "' but the runner holds '" + target->target_name() + "'");
  }
  ASSIGN_OR_RETURN(target::WorkloadSpec workload,
                   target::GetBuiltinWorkload(config.workload));
  RETURN_IF_ERROR(target->SetWorkload(workload));
  return workload;
}

Status LogExperimentObservation(db::Database& database,
                                const std::string& experiment_name,
                                const std::string& parent,
                                const std::string& campaign_name,
                                const target::ExperimentSpec* spec,
                                const target::Observation* observation,
                                const ExperimentDisposition* disposition,
                                const PlannedEquivalence* equivalence) {
  static const ExperimentDisposition kDefaultDisposition;
  if (disposition == nullptr) disposition = &kDefaultDisposition;
  Row row;
  row.push_back(Value::Text_(experiment_name));
  row.push_back(parent.empty() ? Value::Null() : Value::Text_(parent));
  row.push_back(Value::Text_(campaign_name));
  row.push_back(Value::Text_(
      spec != nullptr ? SerializeExperimentSpec(*spec) : "reference"));
  row.push_back(observation != nullptr
                    ? Value::Text_(observation->Serialize())
                    : Value::Null());
  row.push_back(Value::Integer(disposition->attempts));
  row.push_back(Value::Text_(disposition->tool_status));
  row.push_back(Value::Integer(disposition->quarantined));
  row.push_back(equivalence != nullptr ? Value::Text_(equivalence->class_id)
                                       : Value::Null());
  row.push_back(equivalence != nullptr
                    ? Value::Integer(
                          static_cast<std::int64_t>(equivalence->weight))
                    : Value::Null());
  return database.Insert(kLoggedSystemStateTable, std::move(row));
}

Status UpdateCampaignRunStatus(db::Database& database,
                               const std::string& campaign_name,
                               const std::string& status,
                               std::size_t experiments_done) {
  // Elide a no-op rewrite: Update() logs a WAL record for any matched
  // row even when the stored values already equal the new ones, and
  // that extra record would make a resumed run's database differ from
  // an uninterrupted run's byte-for-byte.
  if (const db::Table* table = database.FindTable(kCampaignDataTable)) {
    for (const Row& row : table->rows()) {
      if (row[0].AsText() != campaign_name) continue;
      if (row[20].AsText() == status &&
          row[21].AsInteger() ==
              static_cast<std::int64_t>(experiments_done)) {
        return Status::Ok();
      }
      break;
    }
  }
  const auto result = database.Update(
      kCampaignDataTable,
      [&](const Row& row) { return row[0].AsText() == campaign_name; },
      {{20, Value::Text_(status)},
       {21, Value::Integer(static_cast<std::int64_t>(experiments_done))}});
  return result.ok() ? Status::Ok() : result.status();
}

std::string ExperimentName(const std::string& campaign_name,
                           std::size_t index) {
  return StrFormat("%s/exp%05zu", campaign_name.c_str(), index);
}

Result<target::ExperimentSpec> SampleExperimentSpec(
    const ExperimentPlan& plan, std::size_t index, std::uint64_t* resamples) {
  const CampaignConfig& config = *plan.config;
  target::ExperimentSpec spec;
  spec.name = ExperimentName(config.name, index);
  spec.technique = config.technique;
  spec.model = config.model;
  spec.termination = config.termination;

  // Every experiment owns an RNG stream derived from (campaign seed,
  // experiment index): sampling experiment 7 never depends on whether
  // experiments 0..6 were sampled first, by this thread or any other.
  Rng rng(DeriveStreamSeed(config.seed, index));

  constexpr int kMaxResamples = 20000;
  for (int attempt = 0; attempt < kMaxResamples; ++attempt) {
    spec.targets.clear();
    for (std::uint32_t m = 0; m < config.multiplicity; ++m) {
      spec.targets.push_back(plan.space->SampleBit(rng));
    }
    const std::uint64_t time =
        static_cast<std::uint64_t>(rng.NextInRange(
            static_cast<std::int64_t>(plan.window_lo),
            static_cast<std::int64_t>(plan.window_hi)));

    // Trigger construction per the campaign's trigger kind.
    sim::Breakpoint trigger;
    trigger.one_shot = true;
    if (config.trigger_kind == "instret") {
      trigger.kind = sim::Breakpoint::Kind::kInstretReached;
      trigger.count = time;
    } else if (config.trigger_kind == "rtc") {
      trigger.kind = sim::Breakpoint::Kind::kRtcMicros;
      trigger.micros = std::max<std::uint64_t>(1, time / 25);
    } else if (config.trigger_kind == "branch") {
      trigger.kind = sim::Breakpoint::Kind::kBranchTaken;
      trigger.count =
          1 + rng.NextBelow(std::max<std::uint64_t>(
                  1, std::min<std::uint64_t>(plan.window_hi / 4, 256)));
    } else if (config.trigger_kind == "call") {
      trigger.kind = sim::Breakpoint::Kind::kCall;
      trigger.count = 1 + rng.NextBelow(16);
    } else if (config.trigger_kind == "pc" ||
               config.trigger_kind == "data_read" ||
               config.trigger_kind == "data_write") {
      // Sample an address from the loaded image footprint.
      std::vector<const LocationInfo*> ranges;
      const bool want_code = config.trigger_kind == "pc";
      for (const LocationInfo& info : plan.locations) {
        if (info.kind != LocationInfo::Kind::kMemoryRange) continue;
        const bool is_code = info.category == "memory_code";
        if (is_code == want_code) ranges.push_back(&info);
      }
      if (ranges.empty()) {
        return FailedPreconditionError("no address ranges for trigger kind '" +
                                       config.trigger_kind + "'");
      }
      const LocationInfo* range =
          ranges[rng.NextBelow(ranges.size())];
      trigger.address =
          range->base +
          static_cast<std::uint32_t>(
              rng.NextBelow(std::max<std::uint32_t>(1, range->size / 4)) * 4);
      trigger.kind = config.trigger_kind == "pc"
                         ? sim::Breakpoint::Kind::kPcEquals
                         : (config.trigger_kind == "data_read"
                                ? sim::Breakpoint::Kind::kDataRead
                                : sim::Breakpoint::Kind::kDataWrite);
      trigger.count = 1;
    } else {
      return InvalidArgumentError("unknown trigger kind '" +
                                  config.trigger_kind + "'");
    }
    spec.trigger = trigger;

    // Equivalence mode pins the accepted draw to its class's canonical
    // injection time (the planning pass proved the whole class
    // outcome-equivalent, so this changes nothing observable and makes
    // every member of one class run the identical experiment). Applied
    // after the liveness filter: the filter must see the raw draw so
    // the resample sequence stays a pure function of (plan, index).
    const auto pin_to_class = [&](target::ExperimentSpec accepted) {
      if (plan.equivalence != nullptr && index < plan.equivalence->size()) {
        accepted.trigger.count = (*plan.equivalence)[index].canonical_time;
      }
      return accepted;
    };

    if (plan.preinjection == nullptr) return pin_to_class(spec);
    bool all_live = true;
    for (const target::FaultTarget& fault_target : spec.targets) {
      if (!plan.preinjection->IsLive(fault_target, time)) {
        all_live = false;
        break;
      }
    }
    if (all_live) return pin_to_class(spec);
    ++*resamples;
  }
  return FailedPreconditionError(
      "pre-injection analysis found no live (location, time) point in the "
      "configured window; widen the filters or the time window");
}

Result<PreparedCampaign> PrepareCampaignRun(
    db::Database& database, target::TargetSystemInterface* reference_target,
    const std::string& campaign_name, bool resume,
    std::optional<bool> checkpoint_override) {
  RETURN_IF_ERROR(CreateGoofiSchema(database));
  PreparedCampaign prepared;
  ASSIGN_OR_RETURN(prepared.config, LoadCampaign(database, campaign_name));
  ASSIGN_OR_RETURN(const target::WorkloadSpec workload,
                   ConfigureTargetWorkload(prepared.config, reference_target));
  prepared.workload_termination = workload.termination;
  // Resuming a campaign that already ran to completion (e.g. a daemon
  // killed between the final results commit and its own bookkeeping)
  // must append zero bytes: skip the "running" reset, let the run loop
  // skip every logged experiment, and the final status write elides as
  // a no-op. Any other stored status resets to "running" as usual.
  bool already_completed = false;
  if (resume) {
    if (const db::Table* table = database.FindTable(kCampaignDataTable)) {
      for (const Row& row : table->rows()) {
        if (row[0].AsText() != campaign_name) continue;
        already_completed = row[20].AsText() == "completed";
        break;
      }
    }
  }
  if (!already_completed) {
    RETURN_IF_ERROR(UpdateCampaignRunStatus(database, campaign_name,
                                            "running", 0));
  }

  prepared.summary.campaign_name = campaign_name;

  // ---- equivalence-mode eligibility ------------------------------------
  // The outcome-homogeneity argument (analysis/equivalence.h) only
  // holds when every class member runs the identical experiment apart
  // from the injection time: one transient flip, triggered by instret
  // (any other trigger kind decouples the trigger from the interval's
  // time base), injected at runtime, observed in normal logging. Unlike
  // checkpoint mode this is an explicit analysis claim, so an
  // ineligible campaign fails loudly instead of silently degrading.
  if (prepared.config.use_equivalence) {
    if (prepared.config.trigger_kind != "instret") {
      return FailedPreconditionError(
          "static_analysis = equivalence requires the instret trigger");
    }
    if (prepared.config.multiplicity != 1) {
      return FailedPreconditionError(
          "static_analysis = equivalence requires multiplicity 1");
    }
    if (prepared.config.model.kind !=
        target::FaultModel::Kind::kTransientBitFlip) {
      return FailedPreconditionError(
          "static_analysis = equivalence requires the transient fault model");
    }
    if (prepared.config.logging_mode != target::LoggingMode::kNormal) {
      return FailedPreconditionError(
          "static_analysis = equivalence requires normal logging");
    }
    if (prepared.config.technique == target::Technique::kSwifiPreRuntime) {
      return FailedPreconditionError(
          "static_analysis = equivalence requires runtime injection");
    }
  }

  // ---- static pre-run analysis (before any run) ------------------------
  // Knows nothing the image doesn't say: registers no reachable
  // instruction ever reads are dropped from the location space below.
  std::optional<analysis::StaticLiveness> static_liveness;
  if (prepared.config.use_static_analysis) {
    ASSIGN_OR_RETURN(static_liveness, analysis::StaticLiveness::AnalyzeSource(
                                          workload.assembly));
  }

  // ---- makeReferenceRun() ---------------------------------------------
  target::ExperimentSpec reference_spec;
  reference_spec.name = campaign_name + "/reference";
  reference_spec.technique = prepared.config.technique;
  reference_spec.termination = prepared.config.termination;
  reference_target->set_experiment(reference_spec);
  reference_target->set_logging_mode(prepared.config.logging_mode);

  sim::AccessRecorder recorder;
  if (prepared.config.use_preinjection_analysis ||
      prepared.config.use_equivalence) {
    // Equivalence partitioning needs the golden run's access trace even
    // when the campaign does not enable the liveness filter itself.
    reference_target->set_external_tracer(&recorder);
  }

  // ---- checkpoint-fork eligibility ------------------------------------
  // The golden run doubles as the checkpoint recording pass when the
  // mode is on (campaign key or runner override) and the campaign
  // qualifies: forking is only bit-exact for instret triggers (every
  // other trigger kind depends on execution history a fork would skip),
  // normal logging (detail mode traces the whole run) and runtime
  // injection. Ineligible campaigns silently replay from reset — the
  // logged database is identical by construction.
  const bool checkpoint_requested =
      checkpoint_override.value_or(prepared.config.checkpoint_mode);
  const bool checkpoint_eligible =
      checkpoint_requested && prepared.config.trigger_kind == "instret" &&
      prepared.config.logging_mode == target::LoggingMode::kNormal &&
      prepared.config.technique != target::Technique::kSwifiPreRuntime &&
      reference_target->SupportsCheckpointFork();
  std::vector<sim::Snapshot> recorded_checkpoints;
  if (checkpoint_eligible) {
    // Default stride: a tenth of the effective tool-level instruction
    // budget (spec beats workload beats the global 2M bound, matching
    // ResolveSupervisionPolicy).
    std::uint64_t stride = prepared.config.checkpoint_stride;
    if (stride == 0) {
      std::uint64_t budget = prepared.config.termination.max_instructions != 0
                                 ? prepared.config.termination.max_instructions
                                 : workload.termination.max_instructions;
      if (budget == 0) budget = 2'000'000;
      stride = std::max<std::uint64_t>(1, budget / 10);
    }
    reference_target->set_checkpoint_recording(stride, &recorded_checkpoints);
  }
  RETURN_IF_ERROR(reference_target->MakeReferenceRun());
  reference_target->set_checkpoint_recording(0, nullptr);
  reference_target->set_external_tracer(nullptr);
  for (sim::Snapshot& snapshot : recorded_checkpoints) {
    prepared.checkpoints.Add(std::move(snapshot));
  }
  prepared.checkpoint_fork = !prepared.checkpoints.empty();
  prepared.summary.checkpoints_recorded = prepared.checkpoints.size();
  prepared.summary.reference = reference_target->TakeObservation();
  prepared.summary.reference_experiment = reference_spec.name;
  const db::Table* logged = database.FindTable(kLoggedSystemStateTable);
  const bool reference_logged =
      logged->FindByUnique(0, db::Value::Text_(reference_spec.name))
          .has_value();
  if (reference_logged && !resume) {
    return AlreadyExistsError("campaign '" + campaign_name +
                              "' has already been run (use Resume)");
  }
  if (!reference_logged) {
    RETURN_IF_ERROR(LogExperimentObservation(database, reference_spec.name,
                                             "", campaign_name, nullptr,
                                             &prepared.summary.reference,
                                             nullptr));
  }

  prepared.use_preinjection = prepared.config.use_preinjection_analysis;
  if (prepared.use_preinjection) {
    prepared.preinjection.Build(recorder,
                                prepared.summary.reference.instructions);
    prepared.summary.register_live_fraction =
        prepared.preinjection.RegisterLiveFraction();
  }

  // ---- location space and time window ----------------------------------
  prepared.locations = reference_target->ListLocations();
  ASSIGN_OR_RETURN(prepared.space,
                   LocationSpace::Build(prepared.locations,
                                        prepared.config.technique,
                                        prepared.config.location_filters));
  if (!prepared.config.cache_fault_model.empty()) {
    // An access-path fault model narrows the sampled space to its
    // coordinate family. A target without those coordinates (anything
    // but cache_hierarchy) leaves the restriction empty — fail with the
    // cause rather than sampling a space the model cannot inject into.
    const auto cache_model =
        target::CacheFaultModelFromName(prepared.config.cache_fault_model);
    if (!cache_model.has_value()) {
      return InvalidArgumentError("unknown cache fault model '" +
                                  prepared.config.cache_fault_model + "'");
    }
    const char* family_glob = target::CacheFaultModelLocationGlob(*cache_model);
    LocationSpace narrowed =
        prepared.space.Restricted([family_glob](const LocationInfo& info) {
          return GlobMatch(family_glob, info.name);
        });
    if (narrowed.total_bits() == 0) {
      return FailedPreconditionError(
          "cache fault model '" + prepared.config.cache_fault_model +
          "' selects nothing: target '" + prepared.config.target +
          "' advertises no matching cache coordinates (use the "
          "cache_hierarchy target, and location filters that keep some '" +
          std::string(family_glob) + "' locations)");
    }
    prepared.space = std::move(narrowed);
  }
  if (static_liveness.has_value()) {
    const std::uint64_t unpruned_bits = prepared.space.total_bits();
    LocationSpace pruned =
        prepared.space.Restricted([&](const LocationInfo& info) {
          return static_liveness->MayLocationHoldLiveData(info.name);
        });
    if (pruned.total_bits() == 0) {
      return FailedPreconditionError(
          "static analysis proves every selected location dead for "
          "workload '" + prepared.config.workload +
          "'; widen the location filters");
    }
    prepared.summary.static_pruned_bits =
        unpruned_bits - pruned.total_bits();
    prepared.summary.static_pruned_fraction =
        static_cast<double>(prepared.summary.static_pruned_bits) /
        static_cast<double>(unpruned_bits);
    prepared.space = std::move(pruned);
  }
  const std::uint64_t duration = prepared.summary.reference.instructions;
  if (duration < 3) {
    return FailedPreconditionError("reference run too short to inject into");
  }
  prepared.window_lo =
      prepared.config.time_window_lo != 0 ? prepared.config.time_window_lo
                                          : 1;
  prepared.window_hi =
      prepared.config.time_window_hi != 0
          ? std::min(prepared.config.time_window_hi, duration - 1)
          : duration - 1;
  if (prepared.window_lo > prepared.window_hi) {
    return InvalidArgumentError("empty injection time window");
  }

  // ---- equivalence-class planning --------------------------------------
  // Re-derive every experiment's raw draw (a pure function of (plan, i),
  // so this costs no target runs) and assign it to its def-use class.
  // The first experiment landing in a class becomes the representative;
  // the rest will be logged as duplicate stubs. Draws on unmodeled
  // locations — or past a location's last access — fall back to
  // singleton classes: never unsound, only less pruned.
  if (prepared.config.use_equivalence) {
    analysis::FaultSpacePartition partition;
    partition.Build(recorder, prepared.summary.reference.instructions);
    const ExperimentPlan plan = prepared.MakePlan();  // equivalence still empty
    std::map<std::string, std::size_t> representatives;
    std::uint64_t planning_resamples = 0;  // run-time loop re-counts these
    prepared.equivalence.reserve(prepared.config.num_experiments);
    for (std::size_t i = 0; i < prepared.config.num_experiments; ++i) {
      ASSIGN_OR_RETURN(const target::ExperimentSpec spec,
                       SampleExperimentSpec(plan, i, &planning_resamples));
      const target::FaultTarget& fault_target = spec.targets[0];
      const std::uint64_t time = spec.trigger.count;
      PlannedEquivalence planned;
      const auto interval = partition.IntervalOf(fault_target, time);
      std::uint64_t lo = time;
      std::uint64_t hi = time;
      if (interval.has_value()) {
        lo = std::max(interval->lo, prepared.window_lo);
        hi = std::min(interval->hi, prepared.window_hi);
      }
      planned.class_id = analysis::EquivalenceClassId(fault_target, lo, hi);
      planned.weight = hi - lo + 1;
      // The canonical representative time: the interval's last in-window
      // point. For live draws that is the class's first-use instruction
      // (minimal fault dwell time), and it is live whenever the raw draw
      // was — both lie in the same def-use interval.
      planned.canonical_time = hi;
      const auto [it, inserted] =
          representatives.emplace(planned.class_id, i);
      planned.representative = it->second;
      if (inserted) {
        ++prepared.summary.equiv_classes;
        prepared.summary.equiv_space_weight += planned.weight;
      } else {
        ++prepared.summary.equiv_duplicates;
      }
      prepared.equivalence.push_back(std::move(planned));
    }
  }
  return prepared;
}

Result<CampaignSummary> CampaignRunner::Run(
    const std::string& campaign_name) {
  return RunInternal(campaign_name, /*resume=*/false);
}

Result<CampaignSummary> CampaignRunner::Resume(
    const std::string& campaign_name) {
  return RunInternal(campaign_name, /*resume=*/true);
}

Result<CampaignSummary> CampaignRunner::RunInternal(
    const std::string& campaign_name, bool resume) {
  ASSIGN_OR_RETURN(PreparedCampaign prepared,
                   PrepareCampaignRun(*database_, target_, campaign_name,
                                      resume, checkpoint_override_));
  const CampaignConfig& config = prepared.config;
  CampaignSummary& summary = prepared.summary;
  const ExperimentPlan plan = prepared.MakePlan();
  const db::Table* logged = database_->FindTable(kLoggedSystemStateTable);
  const SupervisionPolicy policy =
      ResolveSupervisionPolicy(config, prepared.workload_termination);
  // Checkpoint-fork lookup cache (misses everything when the plan holds
  // no checkpoints, i.e. the mode is off or the campaign is ineligible).
  CheckpointCache fork_cache(plan.checkpoints);

  // The slot the supervised experiments run on. With a factory the
  // runner mints its own instance (abandonable on a watchdog trip and
  // replaceable under quarantine); without one it borrows the
  // caller-owned target, which can only be reused.
  TargetSlot slot = TargetSlot::Borrow(target_);
  if (target_factory_) {
    ASSIGN_OR_RETURN(std::unique_ptr<target::TargetSystemInterface> minted,
                     target_factory_());
    RETURN_IF_ERROR(ConfigureTargetWorkload(config, minted.get()).status());
    slot = TargetSlot::Own(std::move(minted));
  }

  // ---- the experiment loop ---------------------------------------------
  ProgressInfo progress;
  progress.experiments_total = config.num_experiments;
  std::size_t skipped_existing = 0;
  for (std::size_t i = 0; i < config.num_experiments; ++i) {
    // Fig. 7 controls: pause blocks between experiments; stop ends the
    // campaign but keeps everything logged so far.
    while (controller_ != nullptr && controller_->paused() &&
           !controller_->stopped()) {
      if (progress_) progress_(progress);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (controller_ != nullptr && controller_->stopped()) {
      summary.experiments_stopped_early = config.num_experiments - i;
      break;
    }

    if (resume &&
        logged->FindByUnique(0, db::Value::Text_(ExperimentName(
                                    campaign_name, i))).has_value()) {
      // Already ran before the campaign was stopped; per-experiment RNG
      // streams keep the remaining plan identical to an uninterrupted
      // run without replaying this experiment's draws.
      ++skipped_existing;
      ++progress.experiments_done;
      continue;
    }
    ASSIGN_OR_RETURN(
        target::ExperimentSpec spec,
        SampleExperimentSpec(plan, i, &summary.preinjection_resamples));
    const PlannedEquivalence* equiv =
        plan.equivalence != nullptr && i < plan.equivalence->size()
            ? &(*plan.equivalence)[i]
            : nullptr;
    if (equiv != nullptr && equiv->representative != i) {
      // A duplicate of an earlier representative: the class's outcome is
      // (provably) the representative's, so no injection runs — only a
      // stub row pointing at it. The representative's plan index is
      // always lower, so its row is already logged (serial) or will be
      // logged earlier in canonical order (sharded writer).
      ExperimentDisposition stub;
      stub.attempts = 0;
      stub.tool_status = kToolStatusEquivalent;
      RETURN_IF_ERROR(LogExperimentObservation(
          *database_, spec.name,
          ExperimentName(campaign_name, equiv->representative),
          campaign_name, &spec, nullptr, &stub, equiv));
      ++summary.experiments_run;
      progress.experiments_done = skipped_existing + summary.experiments_run;
      progress.current_experiment = spec.name;
      if (progress_) progress_(progress);
      if (checkpoint_every_ != 0 &&
          summary.experiments_run % checkpoint_every_ == 0) {
        RETURN_IF_ERROR(database_->Persist(checkpoint_directory_));
      }
      continue;
    }
    std::shared_ptr<const sim::Snapshot> start_snapshot;
    if (spec.trigger.kind == sim::Breakpoint::Kind::kInstretReached) {
      summary.trigger_instructions_total += spec.trigger.count;
      start_snapshot = fork_cache.ForTrigger(spec.trigger.count);
    }
    // Fail-soft: a retryable tool-level failure (hang, target fault,
    // transport error) consumes attempts and possibly quarantines the
    // instance, but never the rest of the campaign — an abandoned
    // experiment logs its disposition with a NULL observation and the
    // loop moves on. Only non-retryable errors abort the run.
    ASSIGN_OR_RETURN(SupervisedOutcome outcome,
                     RunSupervisedExperiment(slot, spec, config, policy,
                                             target_factory_,
                                             start_snapshot));
    const bool completed = outcome.disposition.completed();
    RETURN_IF_ERROR(LogExperimentObservation(
        *database_, spec.name, "", campaign_name, &spec,
        completed ? &outcome.observation : nullptr, &outcome.disposition,
        equiv));
    ++summary.experiments_run;
    summary.experiment_retries += outcome.disposition.attempts - 1;
    summary.targets_quarantined += outcome.disposition.quarantined;
    if (!completed) ++summary.experiments_abandoned;
    progress.experiments_done = skipped_existing + summary.experiments_run;
    progress.experiment_retries = summary.experiment_retries;
    progress.experiments_abandoned = summary.experiments_abandoned;
    progress.targets_quarantined = summary.targets_quarantined;
    summary.checkpoint_forks = fork_cache.forks();
    summary.instructions_skipped = fork_cache.instructions_skipped();
    progress.checkpoint_forks = summary.checkpoint_forks;
    progress.instructions_skipped = summary.instructions_skipped;
    if (completed && outcome.observation.fault_was_injected) {
      ++progress.faults_injected;
    }
    progress.current_experiment = spec.name;
    if (progress_) progress_(progress);
    if (checkpoint_every_ != 0 &&
        summary.experiments_run % checkpoint_every_ == 0) {
      RETURN_IF_ERROR(database_->Persist(checkpoint_directory_));
    }
  }

  // A drain ends the run at its last cadence checkpoint: writing the
  // "stopped" row here (or committing the partial batch) would make the
  // database diverge from a SIGKILL at that commit, and the eventual
  // resumed run would no longer be byte-identical to an uninterrupted
  // one. The uncommitted tail is discarded with the Database object.
  if (controller_ != nullptr && controller_->drain_requested()) {
    return summary;
  }
  RETURN_IF_ERROR(UpdateCampaignRunStatus(
      *database_, campaign_name,
      summary.experiments_stopped_early > 0 ? "stopped" : "completed",
      skipped_existing + summary.experiments_run));
  return summary;
}

Result<CampaignSummary> CampaignRunner::FaultInjectorSCIFI(
    const std::string& campaign) {
  ASSIGN_OR_RETURN(CampaignConfig config, LoadCampaign(*database_, campaign));
  if (config.technique != target::Technique::kScifi) {
    return FailedPreconditionError("campaign '" + campaign +
                                   "' is not a SCIFI campaign");
  }
  return Run(campaign);
}

Result<CampaignSummary> CampaignRunner::FaultInjectorSWIFI(
    const std::string& campaign) {
  ASSIGN_OR_RETURN(CampaignConfig config, LoadCampaign(*database_, campaign));
  if (config.technique == target::Technique::kScifi) {
    return FailedPreconditionError("campaign '" + campaign +
                                   "' is not a SWIFI campaign");
  }
  return Run(campaign);
}

Result<std::string> CampaignRunner::ReRunInDetailMode(
    const std::string& experiment_name) {
  const db::Table* logged = database_->FindTable(kLoggedSystemStateTable);
  if (logged == nullptr) return NotFoundError("no LoggedSystemState table");
  const auto index =
      logged->FindByUnique(0, Value::Text_(experiment_name));
  if (!index) {
    return NotFoundError("no logged experiment '" + experiment_name + "'");
  }
  const Row& row = logged->row(*index);
  const std::string campaign_name = row[2].AsText();
  const std::string experiment_data = row[3].AsText();
  if (experiment_data == "reference") {
    return InvalidArgumentError("cannot re-run the reference run");
  }
  ASSIGN_OR_RETURN(target::ExperimentSpec spec,
                   ParseExperimentSpec(experiment_data));
  ASSIGN_OR_RETURN(CampaignConfig config,
                   LoadCampaign(*database_, campaign_name));
  ASSIGN_OR_RETURN(const target::WorkloadSpec workload,
                   ConfigureTargetWorkload(config, target_));

  // Unique child name: count existing children of this experiment.
  std::size_t child_count = 0;
  for (const Row& existing : logged->rows()) {
    if (!existing[1].is_null() &&
        existing[1].AsText() == experiment_name) {
      ++child_count;
    }
  }
  const std::string child_name =
      StrFormat("%s/detail%zu", experiment_name.c_str(), child_count);
  spec.name = child_name;

  // Fail-soft (like the campaign loop): a detail re-run that the tool
  // cannot complete still logs its disposition — with no observation —
  // instead of erroring out of the investigation workflow.
  CampaignConfig detail_config = config;
  detail_config.logging_mode = target::LoggingMode::kDetail;
  const SupervisionPolicy policy =
      ResolveSupervisionPolicy(detail_config, workload.termination);
  TargetSlot slot = TargetSlot::Borrow(target_);
  ASSIGN_OR_RETURN(SupervisedOutcome outcome,
                   RunSupervisedExperiment(slot, spec, detail_config, policy,
                                           target_factory_));
  target_->set_logging_mode(target::LoggingMode::kNormal);
  const bool completed = outcome.disposition.completed();
  RETURN_IF_ERROR(LogExperimentObservation(
      *database_, child_name, experiment_name, campaign_name, &spec,
      completed ? &outcome.observation : nullptr, &outcome.disposition));
  return child_name;
}

}  // namespace goofi::core
