// Campaign execution: the paper's fault-injection phase.
//
// CampaignRunner::FaultInjectorSCIFI(campaign) is the C++ form of
// Fig. 2's `faultInjectorSCIFI(String campaignNr)`:
//   - readCampaignData(campaignNr)   -> LoadCampaign (CampaignData table)
//   - makeReferenceRun()             -> target.MakeReferenceRun(), logged
//   - the per-experiment loop        -> target.RunExperiment() with the
//     paper's phase ordering, each experiment logged to LoggedSystemState
// The same entry point drives pre-runtime/runtime SWIFI campaigns; the
// technique comes from the campaign data (the generic Run() dispatches,
// the named wrappers mirror the paper's method names).
//
// The experiment plan is *deterministic per experiment*: experiment i
// draws its fault from the RNG stream (campaign seed, i), never from a
// shared sequential stream. That makes the plan a pure function of the
// stored campaign row — Resume() regenerates it after a crash, and the
// sharded ParallelCampaignRunner (core/parallel_runner.h) samples it
// out of order on worker threads yet logs a database bit-identical to
// a serial run.
//
// Progress reporting and pause/stop mirror the paper's progress window
// ("getting information about the number of faults injected and also to
// pause, restart or end the campaign").
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <string>

#include "core/campaign.h"
#include "core/checkpoint.h"
#include "core/location.h"
#include "core/preinjection.h"
#include "core/supervision.h"
#include "util/rng.h"
#include "db/database.h"
#include "target/factory.h"
#include "target/fault_injection_algorithms.h"
#include "util/status.h"

namespace goofi::core {

// Fig. 7's pause/restart/end controls, usable from another thread. One
// controller may steer a serial runner or a whole worker fleet: every
// worker polls it between experiments.
class CampaignController {
 public:
  void Pause() { paused_ = true; }
  void Resume() { paused_ = false; }
  void Stop() { stopped_ = true; }
  // Drain: stop like Stop(), but ALSO suppress the final "stopped"
  // status write. A drained run ends at its last cadence checkpoint
  // with the database byte-identical to a SIGKILL at that commit, so a
  // later Resume() (daemon restart, goofi_tool re-run) produces the
  // same bytes as a never-interrupted run. Only sets lock-free
  // atomics — safe to call from a signal handler.
  void Drain() {
    drain_ = true;
    stopped_ = true;
  }
  bool paused() const { return paused_; }
  bool stopped() const { return stopped_; }
  bool drain_requested() const { return drain_; }

 private:
  std::atomic<bool> paused_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> drain_{false};
};

// A value snapshot of campaign progress. Callbacks always receive their
// own copy (never a reference into runner state), so a callback may
// stash the snapshot or hand it to another thread without racing the
// run loop.
struct ProgressInfo {
  std::size_t experiments_done = 0;
  std::size_t experiments_total = 0;
  std::size_t faults_injected = 0;
  std::string current_experiment;
  // Supervision counters (core/supervision.h): extra attempts consumed
  // by retries, experiments the tool gave up on, target instances
  // quarantined/replaced.
  std::size_t experiment_retries = 0;
  std::size_t experiments_abandoned = 0;
  std::size_t targets_quarantined = 0;
  // Checkpoint-fork counters: experiments started from a golden-run
  // checkpoint instead of reset, and the pre-trigger instructions those
  // forks did not have to replay.
  std::size_t checkpoint_forks = 0;
  std::uint64_t instructions_skipped = 0;
};

using ProgressCallback = std::function<void(ProgressInfo)>;

struct CampaignSummary {
  std::string campaign_name;
  std::string reference_experiment;   // LoggedSystemState key of the golden run
  std::size_t experiments_run = 0;
  std::size_t experiments_stopped_early = 0;  // > 0 if Stop() ended the loop
  target::Observation reference;
  // Pre-injection statistics (when the campaign enables the analysis).
  double register_live_fraction = 0.0;
  std::uint64_t preinjection_resamples = 0;
  // Static pre-run analysis statistics (campaign key `static_analysis`):
  // bits removed from the fault-location space because the workload
  // provably never reads them, and the removed fraction of the
  // unpruned space.
  std::uint64_t static_pruned_bits = 0;
  double static_pruned_fraction = 0.0;
  // Supervision totals: extra attempts retried, experiments abandoned
  // with a non-ok tool status (their rows carry no observation), target
  // instances quarantined. experiments_run includes abandoned ones —
  // every planned experiment ends with a logged disposition.
  std::size_t experiment_retries = 0;
  std::size_t experiments_abandoned = 0;
  std::size_t targets_quarantined = 0;
  // Checkpoint-fork totals (zero when the mode is off or the campaign
  // is ineligible): golden-run checkpoints recorded, experiments forked
  // from one, pre-trigger instructions those forks skipped, and the sum
  // of all instret triggers (what a replay-from-reset run would have
  // executed before its triggers) for speedup accounting.
  std::size_t checkpoints_recorded = 0;
  std::size_t checkpoint_forks = 0;
  std::uint64_t instructions_skipped = 0;
  std::uint64_t trigger_instructions_total = 0;
  // Equivalence-partitioning totals (`static_analysis = equivalence`):
  // distinct classes the plan's draws fell into, planned experiments
  // that were logged as duplicates of an earlier representative (no
  // injection run), and the summed weight (member count) of the
  // distinct classes — the fault-space size the representatives stand
  // in for.
  std::size_t equiv_classes = 0;
  std::size_t equiv_duplicates = 0;
  std::uint64_t equiv_space_weight = 0;
};

// ---- the deterministic experiment plan --------------------------------
// Everything needed to regenerate a campaign's experiment list.
// Experiment i's spec is a pure function of (plan, i): its faults come
// from the stream seed DeriveStreamSeed(config->seed, i). The plan is
// read-only during a run, so sharded workers sample from one shared
// instance concurrently.
// The equivalence-partitioning verdict for one planned experiment
// (`static_analysis = equivalence`). Computed once, in plan order, by
// PrepareCampaignRun: experiment i's raw draw falls into a def-use
// equivalence class; the first experiment whose draw lands in a class
// becomes its representative and is physically injected at the class's
// canonical time, every later one is logged as a duplicate stub row
// pointing at the representative. Because the verdict depends only on
// (plan, draw) — never on execution — serial and sharded runs agree.
struct PlannedEquivalence {
  std::string class_id;              // analysis::EquivalenceClassId
  std::uint64_t weight = 1;          // class member count (window-clamped)
  std::uint64_t canonical_time = 0;  // the one injection time reps use
  std::size_t representative = 0;    // plan index of the class's rep
};

struct ExperimentPlan {
  const CampaignConfig* config = nullptr;
  const LocationSpace* space = nullptr;
  // The target's location list (the pc/data_read/data_write trigger
  // kinds sample addresses from its memory ranges). Identical across
  // factory-made worker instances of the same target.
  std::vector<target::TargetSystemInterface::LocationInfo> locations;
  std::uint64_t window_lo = 1;
  std::uint64_t window_hi = 1;
  const PreInjectionAnalysis* preinjection = nullptr;  // null = analysis off
  // Golden-run checkpoints to fork experiments from (null = replay every
  // experiment from reset). Read-only during the run, like the rest of
  // the plan; workers front it with their own CheckpointCache.
  const CheckpointStore* checkpoints = nullptr;
  // Per-experiment equivalence verdicts, index-aligned with the plan
  // (null = equivalence mode off). When set, SampleExperimentSpec pins
  // each experiment's trigger to its class's canonical time.
  const std::vector<PlannedEquivalence>* equivalence = nullptr;
};

// The canonical name of experiment `index`: "<campaign>/exp00042".
// Resume() and the sharded runner identify already-logged experiments
// by this name, regardless of which worker logged them.
std::string ExperimentName(const std::string& campaign_name,
                           std::size_t index);

// Sample experiment `index` of the plan. `resamples` accumulates the
// draws the pre-injection analysis rejected (left untouched when the
// analysis is off).
Result<target::ExperimentSpec> SampleExperimentSpec(
    const ExperimentPlan& plan, std::size_t index, std::uint64_t* resamples);

// Check the campaign/target pairing, resolve the campaign's workload,
// install it on `target` and return it (the static analysis re-reads
// its assembly). Each parallel worker runs this against its own target
// instance.
Result<target::WorkloadSpec> ConfigureTargetWorkload(
    const CampaignConfig& config, target::TargetSystemInterface* target);

// Append one experiment (or reference, spec == nullptr) row to
// LoggedSystemState. `observation` may be null for an abandoned
// experiment (the tool never completed a run; the state_vector column
// stays NULL). `disposition` may be null, meaning the default
// first-try/ok/no-quarantine disposition.
// `equivalence` fills the equiv_class/equiv_weight columns (null =
// leave them NULL; only equivalence-mode campaigns set them).
Status LogExperimentObservation(db::Database& database,
                                const std::string& experiment_name,
                                const std::string& parent,
                                const std::string& campaign_name,
                                const target::ExperimentSpec* spec,
                                const target::Observation* observation,
                                const ExperimentDisposition* disposition,
                                const PlannedEquivalence* equivalence = nullptr);

// Rewrite the campaign's status/experiments_done columns.
Status UpdateCampaignRunStatus(db::Database& database,
                               const std::string& campaign_name,
                               const std::string& status,
                               std::size_t experiments_done);

// The shared front half of a campaign run: load the stored campaign,
// install the workload on `reference_target`, run the static analysis,
// make (and log) the reference run, build the pre-injection analysis
// and the location space / time window. The returned value owns
// everything MakePlan() points into; keep it alive for the whole run.
struct PreparedCampaign {
  CampaignConfig config;
  LocationSpace space;
  PreInjectionAnalysis preinjection;
  bool use_preinjection = false;
  std::vector<target::TargetSystemInterface::LocationInfo> locations;
  std::uint64_t window_lo = 1;
  std::uint64_t window_hi = 1;
  // The workload's tool-level termination defaults; the supervision
  // policy derives its watchdog deadline from these when the campaign
  // sets no explicit experiment_timeout_ms.
  target::TerminationSpec workload_termination{0, 0};
  // Golden-run checkpoints (checkpoint-fork execution). Populated — and
  // checkpoint_fork set — only when the campaign enables the mode (or a
  // runner override forces it) AND the campaign is eligible: instret
  // triggers, normal logging, not pre-runtime SWIFI, and a target that
  // supports snapshot fork. Ineligible campaigns silently replay from
  // reset; the logged database is identical either way.
  CheckpointStore checkpoints;
  bool checkpoint_fork = false;
  // Equivalence-mode planning (config.use_equivalence): one verdict per
  // planned experiment, in plan order. Empty when the mode is off.
  std::vector<PlannedEquivalence> equivalence;
  // Prefilled with the reference observation and static-analysis stats.
  CampaignSummary summary;

  ExperimentPlan MakePlan() const {
    ExperimentPlan plan;
    plan.config = &config;
    plan.space = &space;
    plan.locations = locations;
    plan.window_lo = window_lo;
    plan.window_hi = window_hi;
    plan.preinjection = use_preinjection ? &preinjection : nullptr;
    plan.checkpoints = checkpoint_fork ? &checkpoints : nullptr;
    plan.equivalence = config.use_equivalence ? &equivalence : nullptr;
    return plan;
  }
};

// `checkpoint_override` forces checkpoint-fork execution on or off for
// this run only, regardless of the stored campaign's checkpoint_mode.
// Execution-only: the CampaignData row is not rewritten, so a forked
// run and a replayed run of the same campaign store identical rows
// (the CI smoke job diffs exactly that).
Result<PreparedCampaign> PrepareCampaignRun(
    db::Database& database, target::TargetSystemInterface* reference_target,
    const std::string& campaign_name, bool resume,
    std::optional<bool> checkpoint_override = std::nullopt);

class CampaignRunner {
 public:
  // `database` and `target` must outlive the runner. The target must
  // already have its workload configured *or* the campaign's workload
  // must name a built-in one (then the runner configures it).
  CampaignRunner(db::Database* database,
                 target::TargetSystemInterface* target);

  void set_progress_callback(ProgressCallback callback) {
    progress_ = std::move(callback);
  }
  void set_controller(CampaignController* controller) {
    controller_ = controller;
  }

  // Crash tolerance for long campaigns: persist the database to
  // `directory` after every `every_n` logged experiments. When the
  // database has a WAL attached to `directory` this is a group-commit
  // flush (append + sync of the batched rows); otherwise it rewrites
  // the legacy text format. After a crash, Open() the checkpoint
  // directory and Resume() the campaign.
  void set_checkpoint(std::string directory, std::size_t every_n) {
    checkpoint_directory_ = std::move(directory);
    checkpoint_every_ = every_n;
  }

  // Give the runner a way to mint fresh target instances. With a
  // factory, experiments run on factory-made instances under the full
  // supervision discipline: a wedged instance is abandoned to the
  // reaper and replaced (quarantine). Without one, the caller-owned
  // target is reused for every attempt and over-deadline runs are only
  // classified after they return.
  void set_target_factory(target::TargetFactory factory) {
    target_factory_ = std::move(factory);
  }

  // Force checkpoint-fork execution on or off for this runner's runs,
  // overriding the stored campaign's checkpoint_mode. std::nullopt
  // (default) honours the campaign configuration.
  void set_checkpoint_fork(std::optional<bool> enabled) {
    checkpoint_override_ = enabled;
  }

  // Run a stored campaign end to end (any technique).
  Result<CampaignSummary> Run(const std::string& campaign_name);

  // Continue a previously stopped campaign: already-logged experiments
  // are skipped (every experiment's spec regenerates independently from
  // its (seed, index) stream), the remainder runs and logs as usual.
  // Running campaigns to completion twice is a no-op.
  Result<CampaignSummary> Resume(const std::string& campaign_name);

  // Paper-named wrappers; each checks that the stored campaign uses the
  // matching technique.
  Result<CampaignSummary> FaultInjectorSCIFI(const std::string& campaign);
  Result<CampaignSummary> FaultInjectorSWIFI(const std::string& campaign);

  // Re-run one logged experiment in detail mode, logging the result as a
  // new experiment whose parentExperiment refers to the original (the
  // paper's E1/E2 fail-silence investigation workflow, §2.3).
  Result<std::string> ReRunInDetailMode(const std::string& experiment_name);

 private:
  Result<CampaignSummary> RunInternal(const std::string& campaign_name,
                                      bool resume);

  db::Database* database_;
  target::TargetSystemInterface* target_;
  target::TargetFactory target_factory_;
  ProgressCallback progress_;
  CampaignController* controller_ = nullptr;
  std::string checkpoint_directory_;
  std::size_t checkpoint_every_ = 0;
  std::optional<bool> checkpoint_override_;
};

}  // namespace goofi::core
