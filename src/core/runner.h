// Campaign execution: the paper's fault-injection phase.
//
// CampaignRunner::FaultInjectorSCIFI(campaign) is the C++ form of
// Fig. 2's `faultInjectorSCIFI(String campaignNr)`:
//   - readCampaignData(campaignNr)   -> LoadCampaign (CampaignData table)
//   - makeReferenceRun()             -> target.MakeReferenceRun(), logged
//   - the per-experiment loop        -> target.RunExperiment() with the
//     paper's phase ordering, each experiment logged to LoggedSystemState
// The same entry point drives pre-runtime/runtime SWIFI campaigns; the
// technique comes from the campaign data (the generic Run() dispatches,
// the named wrappers mirror the paper's method names).
//
// Progress reporting and pause/stop mirror the paper's progress window
// ("getting information about the number of faults injected and also to
// pause, restart or end the campaign").
#pragma once

#include <atomic>
#include <functional>
#include <string>

#include "core/campaign.h"
#include "core/location.h"
#include "core/preinjection.h"
#include "util/rng.h"
#include "db/database.h"
#include "target/fault_injection_algorithms.h"
#include "util/status.h"

namespace goofi::core {

// Fig. 7's pause/restart/end controls, usable from another thread.
class CampaignController {
 public:
  void Pause() { paused_ = true; }
  void Resume() { paused_ = false; }
  void Stop() { stopped_ = true; }
  bool paused() const { return paused_; }
  bool stopped() const { return stopped_; }

 private:
  std::atomic<bool> paused_{false};
  std::atomic<bool> stopped_{false};
};

struct ProgressInfo {
  std::size_t experiments_done = 0;
  std::size_t experiments_total = 0;
  std::size_t faults_injected = 0;
  std::string current_experiment;
};

struct CampaignSummary {
  std::string campaign_name;
  std::string reference_experiment;   // LoggedSystemState key of the golden run
  std::size_t experiments_run = 0;
  std::size_t experiments_stopped_early = 0;  // > 0 if Stop() ended the loop
  target::Observation reference;
  // Pre-injection statistics (when the campaign enables the analysis).
  double register_live_fraction = 0.0;
  std::uint64_t preinjection_resamples = 0;
  // Static pre-run analysis statistics (campaign key `static_analysis`):
  // bits removed from the fault-location space because the workload
  // provably never reads them, and the removed fraction of the
  // unpruned space.
  std::uint64_t static_pruned_bits = 0;
  double static_pruned_fraction = 0.0;
};

class CampaignRunner {
 public:
  // `database` and `target` must outlive the runner. The target must
  // already have its workload configured *or* the campaign's workload
  // must name a built-in one (then the runner configures it).
  CampaignRunner(db::Database* database,
                 target::TargetSystemInterface* target);

  void set_progress_callback(
      std::function<void(const ProgressInfo&)> callback) {
    progress_ = std::move(callback);
  }
  void set_controller(CampaignController* controller) {
    controller_ = controller;
  }

  // Crash tolerance for long campaigns: persist the whole database to
  // `directory` after every `every_n` logged experiments. After a crash,
  // load the checkpoint directory and Resume() the campaign.
  void set_checkpoint(std::string directory, std::size_t every_n) {
    checkpoint_directory_ = std::move(directory);
    checkpoint_every_ = every_n;
  }

  // Run a stored campaign end to end (any technique).
  Result<CampaignSummary> Run(const std::string& campaign_name);

  // Continue a previously stopped campaign: already-logged experiments
  // are skipped (the plan regenerates deterministically from the stored
  // seed), the remainder runs and logs as usual. Running campaigns to
  // completion twice is a no-op.
  Result<CampaignSummary> Resume(const std::string& campaign_name);

  // Paper-named wrappers; each checks that the stored campaign uses the
  // matching technique.
  Result<CampaignSummary> FaultInjectorSCIFI(const std::string& campaign);
  Result<CampaignSummary> FaultInjectorSWIFI(const std::string& campaign);

  // Re-run one logged experiment in detail mode, logging the result as a
  // new experiment whose parentExperiment refers to the original (the
  // paper's E1/E2 fail-silence investigation workflow, §2.3).
  Result<std::string> ReRunInDetailMode(const std::string& experiment_name);

 private:
  Result<CampaignSummary> RunInternal(const std::string& campaign_name,
                                      bool resume);
  // Resolves the campaign's workload, installs it on the target, and
  // returns it (the static analysis re-reads its assembly).
  Result<target::WorkloadSpec> ConfigureWorkload(const CampaignConfig& config);
  Result<target::ExperimentSpec> SampleExperiment(
      const CampaignConfig& config, const LocationSpace& space,
      std::uint64_t window_lo, std::uint64_t window_hi, Rng& rng,
      std::size_t index, const PreInjectionAnalysis* preinjection,
      std::uint64_t* resamples);
  Status LogObservation(const std::string& experiment_name,
                        const std::string& parent,
                        const std::string& campaign_name,
                        const target::ExperimentSpec* spec,
                        const target::Observation& observation);
  Status UpdateCampaignStatus(const std::string& campaign_name,
                              const std::string& status,
                              std::size_t experiments_done);

  db::Database* database_;
  target::TargetSystemInterface* target_;
  std::function<void(const ProgressInfo&)> progress_;
  CampaignController* controller_ = nullptr;
  std::string checkpoint_directory_;
  std::size_t checkpoint_every_ = 0;
};

}  // namespace goofi::core
