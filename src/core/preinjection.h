// Pre-injection analysis (paper §4, listed extension):
//
//   "The purpose of this analysis is to determine when registers and
//    other fault injection locations hold live data. Injecting a fault
//    into a location that does not hold live data serves no purpose,
//    since the fault will be overwritten."
//
// From the reference run's access trace we compute, per location, the
// time intervals in which an injected bit would be *read before being
// overwritten*. The campaign runner then samples only live
// (location, time) points; bench_preinjection measures the yield
// improvement against plain random sampling.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/access_recorder.h"
#include "target/target_types.h"
#include "util/status.h"

namespace goofi::core {

// Sorted, disjoint inclusive spans of injection times that are live.
// "Injection at time t" = the flip happens just before the instruction
// with index t executes.
struct LivenessIntervals {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;

  bool Contains(std::uint64_t time) const;
  std::uint64_t TotalLiveTime() const;
};

class PreInjectionAnalysis {
 public:
  // `end_time` is the reference run's instruction count.
  void Build(const sim::AccessRecorder& recorder, std::uint64_t end_time);

  bool IsRegisterLive(unsigned reg, std::uint64_t time) const;
  bool IsMemoryWordLive(std::uint32_t word_address, std::uint64_t time) const;

  // FaultTarget-level check. Locations the analysis cannot reason about
  // (cache arrays, IR, latches — the paper's analysis targets "registers
  // and other fault injection locations [holding] live data", i.e.
  // architectural state) are conservatively treated as live.
  bool IsLive(const target::FaultTarget& target, std::uint64_t time) const;

  // Fraction of the register-file (value-bit x time) volume that is
  // live; headline number for the efficiency reports.
  double RegisterLiveFraction() const;

  const LivenessIntervals& register_intervals(unsigned reg) const {
    return reg_intervals_[reg];
  }
  const std::map<std::uint32_t, LivenessIntervals>& memory_intervals() const {
    return mem_intervals_;
  }
  std::uint64_t end_time() const { return end_time_; }

 private:
  LivenessIntervals reg_intervals_[16];
  std::map<std::uint32_t, LivenessIntervals> mem_intervals_;
  std::uint64_t end_time_ = 0;
};

// Build intervals from one event stream (exposed for unit tests).
LivenessIntervals BuildIntervals(const std::vector<sim::AccessEvent>& events);

}  // namespace goofi::core
