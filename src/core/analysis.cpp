#include "core/analysis.h"

#include <algorithm>
#include <cmath>

#include "analysis/equivalence.h"
#include "core/experiment_codec.h"
#include "core/goofi_schema.h"
#include "core/supervision.h"
#include "util/strings.h"

namespace goofi::core {

const char* OutcomeClassName(OutcomeClass outcome) {
  switch (outcome) {
    case OutcomeClass::kDetected: return "detected";
    case OutcomeClass::kEscaped: return "escaped";
    case OutcomeClass::kLatent: return "latent";
    case OutcomeClass::kOverwritten: return "overwritten";
    case OutcomeClass::kNotInjected: return "not_injected";
  }
  return "?";
}

const char* EscapeKindName(EscapeKind kind) {
  switch (kind) {
    case EscapeKind::kWrongOutput: return "wrong_output";
    case EscapeKind::kFailSilenceViolation: return "fail_silence_violation";
    case EscapeKind::kTimelinessViolation: return "timeliness_violation";
  }
  return "?";
}

namespace {

std::size_t ChainDiffBits(const target::Observation& reference,
                          const target::Observation& experiment) {
  std::size_t bits = 0;
  for (const auto& [chain, ref_image] : reference.chain_images) {
    const auto it = experiment.chain_images.find(chain);
    if (it == experiment.chain_images.end()) continue;
    if (it->second.size() != ref_image.size()) {
      // Different chain geometry should never happen within one target;
      // count it as fully different.
      bits += std::max(it->second.size(), ref_image.size());
      continue;
    }
    bits += ref_image.HammingDistance(it->second);
  }
  return bits;
}

bool OutputsMatch(const target::Observation& reference,
                  const target::Observation& experiment) {
  return experiment.output_region == reference.output_region &&
         experiment.emitted == reference.emitted &&
         experiment.env_outputs == reference.env_outputs;
}

}  // namespace

Classification Classify(const target::Observation& reference,
                        const target::Observation& experiment) {
  Classification result;
  result.state_diff_bits = ChainDiffBits(reference, experiment);

  // 1. An EDM terminated the run: detected, attributed to its mechanism.
  if (experiment.stop_reason == sim::StopReason::kEdm && experiment.edm) {
    result.outcome = OutcomeClass::kDetected;
    result.detected_by = experiment.edm->type;
    return result;
  }

  const bool outputs_match = OutputsMatch(reference, experiment);

  // 2. The run did not terminate the way the fault-free run did: the
  //    tool-level time-out expired (or the termination mode changed) —
  //    a timeliness violation that escaped every mechanism.
  if (experiment.stop_reason != reference.stop_reason) {
    result.outcome = OutcomeClass::kEscaped;
    result.escape_kind = EscapeKind::kTimelinessViolation;
    return result;
  }

  // 3. Wrong results that nothing caught.
  if (!outputs_match) {
    result.outcome = OutcomeClass::kEscaped;
    result.escape_kind =
        experiment.env_outputs != reference.env_outputs
            ? EscapeKind::kFailSilenceViolation
            : EscapeKind::kWrongOutput;
    return result;
  }

  // 4. Correct outputs: latent (state still differs) or overwritten.
  if (result.state_diff_bits > 0) {
    result.outcome = OutcomeClass::kLatent;
  } else {
    result.outcome = experiment.fault_was_injected
                         ? OutcomeClass::kOverwritten
                         : OutcomeClass::kNotInjected;
  }
  return result;
}

ConfidenceInterval WilsonInterval95(std::size_t successes,
                                    std::size_t trials) {
  ConfidenceInterval interval;
  if (trials == 0) return interval;
  const double z = 1.959963985;  // 97.5th percentile of N(0,1)
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      (z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))) / denom;
  interval.estimate = p;
  interval.low = std::max(0.0, center - margin);
  interval.high = std::min(1.0, center + margin);
  return interval;
}

std::string LocationCategory(const std::string& location) {
  if (StartsWith(location, "cpu.regs.")) return "reg";
  if (StartsWith(location, "cpu.")) return "control";
  if (StartsWith(location, "icache.")) return "icache";
  if (StartsWith(location, "dcache.")) return "dcache";
  if (StartsWith(location, "pins.")) return "pin";
  if (StartsWith(location, "mem@")) return "memory";
  return "?";
}

Result<CampaignAnalysis> AnalyzeCampaign(db::Database& database,
                                         const std::string& campaign_name,
                                         bool collect_experiments) {
  const db::Table* logged = database.FindTable(kLoggedSystemStateTable);
  if (logged == nullptr) return NotFoundError("no LoggedSystemState table");

  // Fetch the reference observation.
  const auto ref_index = logged->FindByUnique(
      0, db::Value::Text_(campaign_name + "/reference"));
  if (!ref_index) {
    return NotFoundError("campaign '" + campaign_name +
                         "' has no logged reference run");
  }
  ASSIGN_OR_RETURN(
      target::Observation reference,
      target::Observation::Deserialize(
          logged->row(*ref_index)[4].AsText()));

  CampaignAnalysis analysis;
  analysis.campaign = campaign_name;
  // Row selection: probe the campaign_name secondary index when the
  // schema declares one (the default GOOFI schema does); legacy schemas
  // without the INDEXED marker fall back to the full scan.
  std::vector<std::size_t> scan_order;
  const std::vector<std::size_t>* selected = &scan_order;
  if (logged->HasSecondaryIndex(2)) {
    const auto* bucket =
        logged->FindBySecondary(2, db::Value::Text_(campaign_name));
    if (bucket != nullptr) selected = bucket;
  } else {
    scan_order.resize(logged->row_count());
    for (std::size_t i = 0; i < scan_order.size(); ++i) scan_order[i] = i;
  }
  for (const std::size_t row_index : *selected) {
    const db::Row& row = logged->row(row_index);
    if (row[2].AsText() != campaign_name) continue;
    // Equivalence-class duplicates carry their representative's name in
    // the parent column, so this check must precede the detail-re-run
    // skip below: a stub row is pruned sampling, not a child run.
    if (row.size() > 6 && !row[6].is_null() &&
        row[6].AsText() == kToolStatusEquivalent) {
      ++analysis.equivalence.duplicates;
      analysis.equivalence.enabled = true;
      const auto rep_index =
          row[1].is_null()
              ? std::nullopt
              : logged->FindByUnique(0, db::Value::Text_(row[1].AsText()));
      if (!rep_index ||
          (logged->row(*rep_index).size() > 6 &&
           !logged->row(*rep_index)[6].is_null() &&
           logged->row(*rep_index)[6].AsText() != "ok")) {
        ++analysis.equivalence.unresolved_duplicates;
      }
      continue;
    }
    if (!row[1].is_null()) continue;  // detail re-run child
    if (row[3].AsText() == "reference") continue;
    // Abandoned experiments (watchdog/retry gave up; see
    // core/supervision.h) have no observation to classify: the outcome
    // taxonomy is only defined for experiments the tool completed.
    if (row.size() > 6 && !row[6].is_null() && row[6].AsText() != "ok") {
      ++analysis.tool_incomplete;
      continue;
    }

    ASSIGN_OR_RETURN(target::Observation observation,
                     target::Observation::Deserialize(row[4].AsText()));
    ExperimentResult result;
    result.name = row[0].AsText();
    const auto spec = ParseExperimentSpec(row[3].AsText());
    if (spec.ok() && !spec.value().targets.empty()) {
      result.location = spec.value().targets.front().location;
      result.category = LocationCategory(result.location);
      if (spec.value().trigger.kind ==
          sim::Breakpoint::Kind::kInstretReached) {
        result.injection_time = spec.value().trigger.count;
      }
    }
    result.classification = Classify(reference, observation);

    // Detection latency: only measurable for instret-triggered detected
    // experiments (the injection time is then exact).
    if (result.classification.outcome == OutcomeClass::kDetected &&
        observation.edm && result.injection_time > 0 &&
        observation.edm->time >= result.injection_time) {
      const std::uint64_t latency =
          observation.edm->time - result.injection_time;
      analysis.latency_mean =
          (analysis.latency_mean *
               static_cast<double>(analysis.latency_samples) +
           static_cast<double>(latency)) /
          static_cast<double>(analysis.latency_samples + 1);
      ++analysis.latency_samples;
      analysis.latency_max = std::max(analysis.latency_max, latency);
    }

    ++analysis.total;
    switch (result.classification.outcome) {
      case OutcomeClass::kDetected:
        ++analysis.detected;
        ++analysis.detected_by_mechanism[sim::EdmTypeName(
            *result.classification.detected_by)];
        break;
      case OutcomeClass::kEscaped:
        ++analysis.escaped;
        switch (*result.classification.escape_kind) {
          case EscapeKind::kWrongOutput: ++analysis.wrong_output; break;
          case EscapeKind::kFailSilenceViolation:
            ++analysis.fail_silence;
            break;
          case EscapeKind::kTimelinessViolation:
            ++analysis.timeliness;
            break;
        }
        break;
      case OutcomeClass::kLatent: ++analysis.latent; break;
      case OutcomeClass::kOverwritten: ++analysis.overwritten; break;
      case OutcomeClass::kNotInjected: ++analysis.not_injected; break;
    }
    if (!result.category.empty()) {
      ++analysis.by_category[result.category][result.classification.outcome];
    }

    // Equivalence representative: re-count its outcome with the class
    // weight for the extrapolated-to-full-space taxonomy.
    if (row.size() > 8 && !row[8].is_null()) {
      CampaignAnalysis::EquivalenceStats& equiv = analysis.equivalence;
      equiv.enabled = true;
      ++equiv.classes;
      const std::uint64_t weight =
          row.size() > 9 && !row[9].is_null()
              ? static_cast<std::uint64_t>(row[9].AsInteger())
              : 1;
      equiv.space_weight += weight;
      switch (result.classification.outcome) {
        case OutcomeClass::kDetected: equiv.weighted_detected += weight; break;
        case OutcomeClass::kEscaped: equiv.weighted_escaped += weight; break;
        case OutcomeClass::kLatent: equiv.weighted_latent += weight; break;
        case OutcomeClass::kOverwritten:
          equiv.weighted_overwritten += weight;
          break;
        case OutcomeClass::kNotInjected:
          equiv.weighted_not_injected += weight;
          break;
      }
      if (result.classification.outcome == OutcomeClass::kDetected &&
          observation.edm && result.injection_time > 0 &&
          observation.edm->time >= result.injection_time) {
        // In-class latency is linear in the injection time (the EDM
        // event is at one fixed instant for the whole class), so the
        // class mean is the representative's latency shifted from the
        // representative's time to the class midpoint.
        const auto key =
            goofi::analysis::ParseEquivalenceClassId(row[8].AsText());
        if (key.ok()) {
          const double rep_latency = static_cast<double>(
              observation.edm->time - result.injection_time);
          const double midpoint = (static_cast<double>(key.value().lo) +
                                   static_cast<double>(key.value().hi)) /
                                  2.0;
          const double class_mean =
              rep_latency +
              (static_cast<double>(result.injection_time) - midpoint);
          equiv.extrapolated_latency_mean =
              (equiv.extrapolated_latency_mean *
                   static_cast<double>(equiv.extrapolated_latency_weight) +
               class_mean * static_cast<double>(weight)) /
              static_cast<double>(equiv.extrapolated_latency_weight + weight);
          equiv.extrapolated_latency_weight += weight;
        }
      }
    }
    if (collect_experiments) analysis.experiments.push_back(std::move(result));
  }

  const std::size_t effective = analysis.detected + analysis.escaped;
  analysis.detection_coverage = WilsonInterval95(analysis.detected, effective);
  analysis.effectiveness = WilsonInterval95(effective, analysis.total);
  if (analysis.equivalence.enabled) {
    CampaignAnalysis::EquivalenceStats& equiv = analysis.equivalence;
    const std::uint64_t weighted_effective =
        equiv.weighted_detected + equiv.weighted_escaped;
    if (weighted_effective > 0) {
      equiv.weighted_detection_coverage =
          static_cast<double>(equiv.weighted_detected) /
          static_cast<double>(weighted_effective);
    }
    if (equiv.space_weight > 0) {
      equiv.weighted_effectiveness =
          static_cast<double>(weighted_effective) /
          static_cast<double>(equiv.space_weight);
    }
  }
  return analysis;
}

std::string FormatAnalysisCsv(const CampaignAnalysis& analysis) {
  std::string out =
      "experiment,location,category,injection_time,outcome,detected_by,"
      "escape_kind,state_diff_bits\n";
  for (const ExperimentResult& experiment : analysis.experiments) {
    const Classification& c = experiment.classification;
    out += experiment.name + "," + experiment.location + "," +
           experiment.category + "," +
           std::to_string(experiment.injection_time) + "," +
           OutcomeClassName(c.outcome) + ",";
    out += c.detected_by ? sim::EdmTypeName(*c.detected_by) : "";
    out += ",";
    out += c.escape_kind ? EscapeKindName(*c.escape_kind) : "";
    out += "," + std::to_string(c.state_diff_bits) + "\n";
  }
  return out;
}

TimeHistogram BuildTimeHistogram(const CampaignAnalysis& analysis,
                                 std::size_t bucket_count) {
  TimeHistogram histogram;
  if (bucket_count == 0) return histogram;
  std::uint64_t max_time = 0;
  for (const ExperimentResult& experiment : analysis.experiments) {
    max_time = std::max(max_time, experiment.injection_time);
  }
  if (max_time == 0) return histogram;
  const std::uint64_t width = (max_time + bucket_count) / bucket_count;
  histogram.buckets.resize(bucket_count);
  for (std::size_t i = 0; i < bucket_count; ++i) {
    histogram.buckets[i].lo = i * width;
    histogram.buckets[i].hi = (i + 1) * width - 1;
  }
  for (const ExperimentResult& experiment : analysis.experiments) {
    if (experiment.injection_time == 0) continue;  // no instret trigger
    const std::size_t index = std::min<std::size_t>(
        experiment.injection_time / width, bucket_count - 1);
    TimeHistogram::Bucket& bucket = histogram.buckets[index];
    switch (experiment.classification.outcome) {
      case OutcomeClass::kDetected: ++bucket.detected; break;
      case OutcomeClass::kEscaped: ++bucket.escaped; break;
      case OutcomeClass::kLatent: ++bucket.latent; break;
      case OutcomeClass::kOverwritten:
      case OutcomeClass::kNotInjected:
        ++bucket.non_effective;
        break;
    }
    ++histogram.covered_experiments;
  }
  return histogram;
}

std::string FormatTimeHistogram(const TimeHistogram& histogram) {
  std::string out = StrFormat(
      "outcomes by injection time (%zu experiments with exact times)\n",
      histogram.covered_experiments);
  out += StrFormat("%-22s %8s %8s %8s %8s\n", "time window", "detect",
                   "escape", "latent", "no-eff");
  for (const TimeHistogram::Bucket& bucket : histogram.buckets) {
    out += StrFormat("[%8llu, %8llu]   %8zu %8zu %8zu %8zu\n",
                     static_cast<unsigned long long>(bucket.lo),
                     static_cast<unsigned long long>(bucket.hi),
                     bucket.detected, bucket.escaped, bucket.latent,
                     bucket.non_effective);
  }
  return out;
}

std::string FormatAnalysisReport(const CampaignAnalysis& analysis) {
  std::string out;
  out += StrFormat("Campaign %s: %zu experiments\n",
                   analysis.campaign.c_str(), analysis.total);
  const std::size_t effective = analysis.detected + analysis.escaped;
  out += StrFormat("  Effective errors:      %zu\n", effective);
  out += StrFormat("    Detected errors:     %zu\n", analysis.detected);
  for (const auto& [mechanism, count] : analysis.detected_by_mechanism) {
    out += StrFormat("      %-20s %zu\n", mechanism.c_str(), count);
  }
  out += StrFormat("    Escaped errors:      %zu\n", analysis.escaped);
  out += StrFormat("      wrong output:        %zu\n", analysis.wrong_output);
  out += StrFormat("      fail-silence viol.:  %zu\n", analysis.fail_silence);
  out += StrFormat("      timeliness viol.:    %zu\n", analysis.timeliness);
  out += StrFormat("  Non-effective errors:  %zu\n",
                   analysis.latent + analysis.overwritten +
                       analysis.not_injected);
  out += StrFormat("    Latent errors:       %zu\n", analysis.latent);
  out += StrFormat("    Overwritten errors:  %zu\n", analysis.overwritten);
  if (analysis.not_injected > 0) {
    out += StrFormat("    (never injected):    %zu\n", analysis.not_injected);
  }
  if (analysis.tool_incomplete > 0) {
    out += StrFormat(
        "  Tool-incomplete:       %zu (abandoned by the supervisor; "
        "excluded from the taxonomy)\n",
        analysis.tool_incomplete);
  }
  out += StrFormat(
      "  Detection coverage:    %.3f  [%.3f, %.3f] (95%% Wilson)\n",
      analysis.detection_coverage.estimate, analysis.detection_coverage.low,
      analysis.detection_coverage.high);
  out += StrFormat(
      "  Effectiveness:         %.3f  [%.3f, %.3f] (95%% Wilson)\n",
      analysis.effectiveness.estimate, analysis.effectiveness.low,
      analysis.effectiveness.high);
  if (analysis.latency_samples > 0) {
    out += StrFormat(
        "  Detection latency:     mean %.1f, max %llu instructions "
        "(%zu samples)\n",
        analysis.latency_mean,
        static_cast<unsigned long long>(analysis.latency_max),
        analysis.latency_samples);
  }
  if (analysis.equivalence.enabled) {
    const CampaignAnalysis::EquivalenceStats& equiv = analysis.equivalence;
    out += StrFormat(
        "  Equivalence classes:   %zu measured, %zu duplicates pruned\n",
        equiv.classes, equiv.duplicates);
    if (equiv.unresolved_duplicates > 0) {
      out += StrFormat(
          "    unresolved dups:     %zu (representative missing or "
          "incomplete)\n",
          equiv.unresolved_duplicates);
    }
    out += StrFormat(
        "    Extrapolated space:  %llu fault points (class weights)\n",
        static_cast<unsigned long long>(equiv.space_weight));
    out += StrFormat(
        "    Weighted outcomes:   detected=%llu escaped=%llu latent=%llu "
        "overwritten=%llu not_injected=%llu\n",
        static_cast<unsigned long long>(equiv.weighted_detected),
        static_cast<unsigned long long>(equiv.weighted_escaped),
        static_cast<unsigned long long>(equiv.weighted_latent),
        static_cast<unsigned long long>(equiv.weighted_overwritten),
        static_cast<unsigned long long>(equiv.weighted_not_injected));
    out += StrFormat(
        "    Weighted coverage:   %.3f (measured %.3f over "
        "representatives)\n",
        equiv.weighted_detection_coverage,
        analysis.detection_coverage.estimate);
    out += StrFormat("    Weighted effectiveness: %.3f (measured %.3f)\n",
                     equiv.weighted_effectiveness,
                     analysis.effectiveness.estimate);
    if (equiv.extrapolated_latency_weight > 0) {
      out += StrFormat(
          "    Extrapolated latency: mean %.1f instructions over %llu "
          "fault points\n",
          equiv.extrapolated_latency_mean,
          static_cast<unsigned long long>(equiv.extrapolated_latency_weight));
    }
  }
  if (!analysis.by_category.empty()) {
    out += "  By location category:\n";
    for (const auto& [category, outcomes] : analysis.by_category) {
      std::string line = StrFormat("    %-10s", category.c_str());
      for (const auto outcome :
           {OutcomeClass::kDetected, OutcomeClass::kEscaped,
            OutcomeClass::kLatent, OutcomeClass::kOverwritten,
            OutcomeClass::kNotInjected}) {
        const auto it = outcomes.find(outcome);
        line += StrFormat(" %s=%zu", OutcomeClassName(outcome),
                          it == outcomes.end() ? std::size_t{0} : it->second);
      }
      out += line + "\n";
    }
  }
  return out;
}

}  // namespace goofi::core
