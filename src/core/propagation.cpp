#include "core/propagation.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace goofi::core {

Result<PropagationReport> AnalyzeErrorPropagation(
    const sim::ScanChain& chain,
    const std::vector<std::pair<std::uint64_t, BitVector>>& reference_trace,
    const std::vector<std::pair<std::uint64_t, BitVector>>& faulty_trace) {
  if (reference_trace.empty() || faulty_trace.empty()) {
    return InvalidArgumentError(
        "error-propagation analysis needs detail-mode traces on both runs");
  }
  PropagationReport report;
  report.compared_steps =
      std::min(reference_trace.size(), faulty_trace.size());
  report.lengths_differ =
      reference_trace.size() != faulty_trace.size();

  struct Tracking {
    bool seen = false;
    std::uint64_t first_time = 0;
    std::size_t peak = 0;
    std::size_t last = 0;
  };
  std::map<std::string, Tracking> tracking;

  for (std::size_t step = 0; step < report.compared_steps; ++step) {
    const auto& [ref_time, ref_image] = reference_trace[step];
    const auto& [fault_time, fault_image] = faulty_trace[step];
    if (ref_image.size() != chain.bit_length() ||
        fault_image.size() != chain.bit_length()) {
      return InvalidArgumentError(
          "trace image width does not match the scan chain");
    }
    std::size_t total = 0;
    for (const sim::ScanElement& element : chain.elements()) {
      // Count differing bits inside this element's field.
      std::size_t diff = 0;
      std::size_t remaining = element.width;
      std::size_t bit = element.position;
      while (remaining > 0) {
        const std::size_t chunk = std::min<std::size_t>(remaining, 64);
        const std::uint64_t a = ref_image.GetField(bit, chunk);
        const std::uint64_t b = fault_image.GetField(bit, chunk);
        diff += static_cast<std::size_t>(__builtin_popcountll(a ^ b));
        bit += chunk;
        remaining -= chunk;
      }
      total += diff;
      if (diff > 0) {
        Tracking& t = tracking[element.name];
        if (!t.seen) {
          t.seen = true;
          t.first_time = fault_time;
          // Remember category via a parallel lookup at report time.
        }
        t.peak = std::max(t.peak, diff);
        t.last = diff;
      } else if (tracking.count(element.name)) {
        tracking[element.name].last = 0;
      }
    }
    report.timeline.emplace_back(fault_time, total);
    if (total > 0 && !report.diverged) {
      report.diverged = true;
      report.first_divergence_time = fault_time;
    }
  }
  // A control-flow change that shortens/lengthens the run is divergence
  // even if the compared prefix matched.
  if (!report.diverged && report.lengths_differ) {
    report.diverged = true;
    report.first_divergence_time =
        reference_trace[report.compared_steps - 1].first;
  }

  for (const sim::ScanElement& element : chain.elements()) {
    const auto it = tracking.find(element.name);
    if (it == tracking.end() || !it->second.seen) continue;
    ElementDivergence divergence;
    divergence.name = element.name;
    divergence.category = element.category;
    divergence.first_time = it->second.first_time;
    divergence.peak_diff_bits = it->second.peak;
    divergence.still_corrupted_at_end = it->second.last > 0;
    report.elements.push_back(std::move(divergence));
  }
  std::stable_sort(report.elements.begin(), report.elements.end(),
                   [](const ElementDivergence& a,
                      const ElementDivergence& b) {
                     return a.first_time < b.first_time;
                   });
  return report;
}

Result<PropagationReport> AnalyzeErrorPropagation(
    const sim::ScanChain& chain, const target::Observation& reference,
    const target::Observation& faulty) {
  return AnalyzeErrorPropagation(chain, reference.detail_trace,
                                 faulty.detail_trace);
}

std::string PropagationReport::Format(std::size_t max_elements) const {
  std::string out;
  if (!diverged) {
    return "no divergence: the fault never propagated into observed "
           "state\n";
  }
  out += StrFormat("first divergence at instruction %llu\n",
                   static_cast<unsigned long long>(first_divergence_time));
  if (lengths_differ) {
    out += "control flow diverged (trace lengths differ)\n";
  }
  out += StrFormat("corruption reached %zu state elements:\n",
                   elements.size());
  for (std::size_t i = 0; i < elements.size() && i < max_elements; ++i) {
    const ElementDivergence& element = elements[i];
    out += StrFormat("  t=%-8llu %-24s peak %zu bit(s)%s\n",
                     static_cast<unsigned long long>(element.first_time),
                     element.name.c_str(), element.peak_diff_bits,
                     element.still_corrupted_at_end ? "  [still corrupt]"
                                                    : "");
  }
  if (elements.size() > max_elements) {
    out += StrFormat("  ... and %zu more\n",
                     elements.size() - max_elements);
  }
  std::size_t peak = 0;
  std::uint64_t peak_time = 0;
  for (const auto& [time, bits] : timeline) {
    if (bits > peak) {
      peak = bits;
      peak_time = time;
    }
  }
  out += StrFormat("peak corruption: %zu bits at instruction %llu\n", peak,
                   static_cast<unsigned long long>(peak_time));
  if (!timeline.empty()) {
    out += StrFormat("corrupted bits at end of compared window: %zu\n",
                     timeline.back().second);
  }
  return out;
}

}  // namespace goofi::core
