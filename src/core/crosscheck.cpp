#include "core/crosscheck.h"

#include "analysis/static_liveness.h"
#include "core/preinjection.h"
#include "sim/access_recorder.h"
#include "target/thor_rd_target.h"
#include "target/workloads.h"
#include "util/strings.h"

namespace goofi::core {

std::string CrossCheckViolation::ToString() const {
  if (kind == "register") {
    return StrFormat(
        "%s: r%u dynamically live at t=%llu (pc=0x%08x) but statically dead",
        workload.c_str(), subject,
        static_cast<unsigned long long>(time), pc);
  }
  if (kind == "memory") {
    return StrFormat(
        "%s: word 0x%08x dynamically live but statically never read",
        workload.c_str(), subject);
  }
  return StrFormat("%s: executed pc=0x%08x is statically unreachable",
                   workload.c_str(), pc);
}

Result<std::vector<CrossCheckViolation>> CrossCheckWorkload(
    const std::string& workload_name) {
  ASSIGN_OR_RETURN(target::WorkloadSpec workload,
                   target::GetBuiltinWorkload(workload_name));
  ASSIGN_OR_RETURN(const analysis::StaticLiveness static_liveness,
                   analysis::StaticLiveness::AnalyzeSource(workload.assembly));

  target::ThorRdTarget target;
  RETURN_IF_ERROR(target.SetWorkload(workload));
  target::ExperimentSpec reference;
  reference.name = workload_name + "/crosscheck";
  target.set_experiment(reference);
  sim::AccessRecorder recorder;
  target.set_external_tracer(&recorder);
  RETURN_IF_ERROR(target.MakeReferenceRun());
  target.set_external_tracer(nullptr);
  const target::Observation observation = target.TakeObservation();

  PreInjectionAnalysis dynamic;
  dynamic.Build(recorder, observation.instructions);
  const std::vector<std::uint32_t>& pc_trace = recorder.pc_trace();

  std::vector<CrossCheckViolation> violations;

  // Every executed pc must be statically reachable.
  std::uint32_t last_unreachable = 0xffffffffu;
  for (std::uint64_t time = 0; time < pc_trace.size(); ++time) {
    const std::uint32_t pc = pc_trace[time];
    if (!static_liveness.cfg().IsReachable(pc) && pc != last_unreachable) {
      violations.push_back(
          {workload_name, "reachability", time, pc, 0});
      last_unreachable = pc;
    }
  }

  // Dynamic register liveness must imply static may-liveness at the pc
  // of the instruction the injection would land in front of.
  for (unsigned reg = 1; reg < 16; ++reg) {
    for (const auto& [first, last] : dynamic.register_intervals(reg).spans) {
      for (std::uint64_t time = first;
           time <= last && time < pc_trace.size(); ++time) {
        if (!static_liveness.MayBeLiveAtPc(static_cast<std::uint8_t>(reg),
                                           pc_trace[time])) {
          violations.push_back({workload_name, "register", time,
                                pc_trace[time], reg});
          break;  // one per (reg, span) keeps reports readable
        }
      }
    }
  }

  // Dynamic memory liveness must imply the word can statically be read.
  for (const auto& [word, intervals] : dynamic.memory_intervals()) {
    if (intervals.spans.empty()) continue;
    if (!static_liveness.MayWordHoldLiveData(word)) {
      violations.push_back({workload_name, "memory", 0, 0, word});
    }
  }
  return violations;
}

Status CrossCheckBuiltinWorkloads() {
  std::vector<std::string> failures;
  for (const std::string& name : target::BuiltinWorkloadNames()) {
    ASSIGN_OR_RETURN(const std::vector<CrossCheckViolation> violations,
                     CrossCheckWorkload(name));
    for (const CrossCheckViolation& violation : violations) {
      failures.push_back(violation.ToString());
    }
  }
  if (failures.empty()) return Status::Ok();
  return InternalError("static liveness is not a superset of dynamic: " +
                       JoinStrings(failures, "; "));
}

}  // namespace goofi::core
