#include "core/crosscheck.h"

#include "analysis/dataflow.h"
#include "analysis/equivalence.h"
#include "analysis/static_liveness.h"
#include "core/campaign.h"
#include "core/experiment_codec.h"
#include "core/goofi_schema.h"
#include "core/preinjection.h"
#include "core/registry.h"
#include "core/runner.h"
#include "sim/access_recorder.h"
#include "target/thor_rd_target.h"
#include "target/workloads.h"
#include "util/strings.h"

namespace goofi::core {

std::string CrossCheckViolation::ToString() const {
  if (kind == "register") {
    return StrFormat(
        "%s: r%u dynamically live at t=%llu (pc=0x%08x) but statically dead",
        workload.c_str(), subject,
        static_cast<unsigned long long>(time), pc);
  }
  if (kind == "memory") {
    return StrFormat(
        "%s: word 0x%08x dynamically live but statically never read",
        workload.c_str(), subject);
  }
  if (kind == "first-use") {
    return StrFormat(
        "%s: r%u's dynamic first use after t=%llu (pc=0x%08x) is not in "
        "the static may-first-use set",
        workload.c_str(), subject, static_cast<unsigned long long>(time), pc);
  }
  return StrFormat("%s: executed pc=0x%08x is statically unreachable",
                   workload.c_str(), pc);
}

Result<std::vector<CrossCheckViolation>> CrossCheckWorkload(
    const std::string& workload_name) {
  ASSIGN_OR_RETURN(target::WorkloadSpec workload,
                   target::GetBuiltinWorkload(workload_name));
  ASSIGN_OR_RETURN(const analysis::StaticLiveness static_liveness,
                   analysis::StaticLiveness::AnalyzeSource(workload.assembly));

  target::ThorRdTarget target;
  RETURN_IF_ERROR(target.SetWorkload(workload));
  target::ExperimentSpec reference;
  reference.name = workload_name + "/crosscheck";
  target.set_experiment(reference);
  sim::AccessRecorder recorder;
  target.set_external_tracer(&recorder);
  RETURN_IF_ERROR(target.MakeReferenceRun());
  target.set_external_tracer(nullptr);
  const target::Observation observation = target.TakeObservation();

  PreInjectionAnalysis dynamic;
  dynamic.Build(recorder, observation.instructions);
  const std::vector<std::uint32_t>& pc_trace = recorder.pc_trace();

  std::vector<CrossCheckViolation> violations;

  // Every executed pc must be statically reachable.
  std::uint32_t last_unreachable = 0xffffffffu;
  for (std::uint64_t time = 0; time < pc_trace.size(); ++time) {
    const std::uint32_t pc = pc_trace[time];
    if (!static_liveness.cfg().IsReachable(pc) && pc != last_unreachable) {
      violations.push_back(
          {workload_name, "reachability", time, pc, 0});
      last_unreachable = pc;
    }
  }

  // Dynamic register liveness must imply static may-liveness at the pc
  // of the instruction the injection would land in front of.
  for (unsigned reg = 1; reg < 16; ++reg) {
    for (const auto& [first, last] : dynamic.register_intervals(reg).spans) {
      for (std::uint64_t time = first;
           time <= last && time < pc_trace.size(); ++time) {
        if (!static_liveness.MayBeLiveAtPc(static_cast<std::uint8_t>(reg),
                                           pc_trace[time])) {
          violations.push_back({workload_name, "register", time,
                                pc_trace[time], reg});
          break;  // one per (reg, span) keeps reports readable
        }
      }
    }
  }

  // Dynamic memory liveness must imply the word can statically be read.
  for (const auto& [word, intervals] : dynamic.memory_intervals()) {
    if (intervals.spans.empty()) continue;
    if (!static_liveness.MayWordHoldLiveData(word)) {
      violations.push_back({workload_name, "memory", 0, 0, word});
    }
  }

  // The equivalence partitioner's static counterpart: for every dynamic
  // def-use interval ending in a read, the read's pc must be in the
  // static may-first-use set of the value entering every instruction of
  // the interval — the same superset direction as liveness, one level
  // sharper.
  const analysis::FirstUseResult first_uses =
      analysis::ComputeFirstUses(static_liveness.cfg());
  for (unsigned reg = 1; reg < 16; ++reg) {
    std::uint64_t next_lo = 0;
    for (const sim::AccessEvent& event : recorder.register_events(reg)) {
      const std::uint64_t lo = next_lo;
      if (event.time >= next_lo) next_lo = event.time + 1;
      if (event.is_write || event.time < lo) continue;
      if (event.time >= pc_trace.size()) continue;
      const std::uint32_t use_pc = pc_trace[event.time];
      for (std::uint64_t time = lo; time <= event.time; ++time) {
        if (!first_uses.MayFirstUseAt(static_cast<std::uint8_t>(reg),
                                      pc_trace[time], use_pc)) {
          violations.push_back({workload_name, "first-use", time,
                                pc_trace[time], reg});
          break;  // one per (reg, interval) keeps reports readable
        }
      }
    }
  }
  return violations;
}

Result<EquivalenceAudit> CrossCheckEquivalenceCampaign(
    db::Database& database, const std::string& campaign_name,
    std::size_t max_classes) {
  ASSIGN_OR_RETURN(const CampaignConfig config,
                   LoadCampaign(database, campaign_name));
  const db::Table* logged = database.FindTable(kLoggedSystemStateTable);
  if (logged == nullptr) return NotFoundError("no LoggedSystemState table");

  // A fresh registry-built target, workload installed the same way the
  // campaign's runners install it. Replay-from-reset is bit-exact, so
  // checkpoint/fork settings of the original run are irrelevant here.
  RegisterBuiltinTargets(TargetRegistry::Instance());
  ASSIGN_OR_RETURN(std::unique_ptr<target::TargetSystemInterface> target,
                   TargetRegistry::Instance().Create(config.target));
  RETURN_IF_ERROR(ConfigureTargetWorkload(config, target.get()).status());
  target->set_logging_mode(target::LoggingMode::kNormal);

  EquivalenceAudit audit;
  for (const db::Row& row : logged->rows()) {
    if (max_classes != 0 && audit.classes_checked >= max_classes) break;
    if (row[2].AsText() != campaign_name) continue;
    // Representative rows only: a class id, no parent, a completed run.
    if (row.size() <= 8 || row[8].is_null()) continue;
    if (!row[1].is_null()) continue;
    if (row.size() > 6 && !row[6].is_null() && row[6].AsText() != "ok") {
      continue;
    }
    const std::string class_id = row[8].AsText();
    ASSIGN_OR_RETURN(const analysis::EquivalenceClassKey key,
                     analysis::ParseEquivalenceClassId(class_id));
    ASSIGN_OR_RETURN(target::ExperimentSpec spec,
                     ParseExperimentSpec(row[3].AsText()));
    if (spec.trigger.kind != sim::Breakpoint::Kind::kInstretReached) {
      return FailedPreconditionError(
          "experiment '" + row[0].AsText() + "' is not instret-triggered");
    }
    const std::string representative_observation = row[4].AsText();

    // Inject every member of the class — including the representative's
    // own time, re-proving reproducibility — and demand the identical
    // observation. The homogeneity argument says even the absolute EDM
    // time and the full chain images must match, so the comparison is
    // exact, not taxonomy-level.
    for (std::uint64_t time = key.lo; time <= key.hi; ++time) {
      spec.trigger.count = time;
      spec.name = StrFormat("%s/equivcheck@%llu", row[0].AsText().c_str(),
                            static_cast<unsigned long long>(time));
      target->set_experiment(spec);
      RETURN_IF_ERROR(target->RunExperiment());
      const target::Observation observation = target->TakeObservation();
      ++audit.members_injected;
      if (observation.Serialize() != representative_observation) {
        return InternalError(StrFormat(
            "equivalence class %s is outcome-heterogeneous: member t=%llu "
            "diverges from representative %s",
            class_id.c_str(), static_cast<unsigned long long>(time),
            row[0].AsText().c_str()));
      }
    }
    ++audit.classes_checked;
    audit.space_weight += key.weight();
  }
  return audit;
}

Status CrossCheckBuiltinWorkloads() {
  std::vector<std::string> failures;
  for (const std::string& name : target::BuiltinWorkloadNames()) {
    ASSIGN_OR_RETURN(const std::vector<CrossCheckViolation> violations,
                     CrossCheckWorkload(name));
    for (const CrossCheckViolation& violation : violations) {
      failures.push_back(violation.ToString());
    }
  }
  if (failures.empty()) return Status::Ok();
  return InternalError("static liveness is not a superset of dynamic: " +
                       JoinStrings(failures, "; "));
}

}  // namespace goofi::core
