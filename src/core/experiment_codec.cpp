#include "core/experiment_codec.h"

#include "util/strings.h"

namespace goofi::core {

namespace {

const char* BreakpointKindName(sim::Breakpoint::Kind kind) {
  switch (kind) {
    case sim::Breakpoint::Kind::kPcEquals: return "pc";
    case sim::Breakpoint::Kind::kInstretReached: return "instret";
    case sim::Breakpoint::Kind::kDataRead: return "data_read";
    case sim::Breakpoint::Kind::kDataWrite: return "data_write";
    case sim::Breakpoint::Kind::kBranchTaken: return "branch";
    case sim::Breakpoint::Kind::kCall: return "call";
    case sim::Breakpoint::Kind::kRtcMicros: return "rtc";
  }
  return "?";
}

std::optional<sim::Breakpoint::Kind> BreakpointKindFromName(
    const std::string& name) {
  for (const auto kind :
       {sim::Breakpoint::Kind::kPcEquals, sim::Breakpoint::Kind::kInstretReached,
        sim::Breakpoint::Kind::kDataRead, sim::Breakpoint::Kind::kDataWrite,
        sim::Breakpoint::Kind::kBranchTaken, sim::Breakpoint::Kind::kCall,
        sim::Breakpoint::Kind::kRtcMicros}) {
    if (name == BreakpointKindName(kind)) return kind;
  }
  return std::nullopt;
}

}  // namespace

std::string SerializeTrigger(const sim::Breakpoint& trigger) {
  return StrFormat("%s,0x%08x,%llu,%llu", BreakpointKindName(trigger.kind),
                   trigger.address,
                   static_cast<unsigned long long>(trigger.count),
                   static_cast<unsigned long long>(trigger.micros));
}

Result<sim::Breakpoint> ParseTrigger(const std::string& text) {
  const auto pieces = SplitString(text, ',');
  if (pieces.size() != 4) return ParseError("bad trigger '" + text + "'");
  const auto kind = BreakpointKindFromName(pieces[0]);
  const auto address = ParseUint64(pieces[1]);
  const auto count = ParseUint64(pieces[2]);
  const auto micros = ParseUint64(pieces[3]);
  if (!kind || !address || !count || !micros) {
    return ParseError("bad trigger '" + text + "'");
  }
  sim::Breakpoint trigger;
  trigger.kind = *kind;
  trigger.address = static_cast<std::uint32_t>(*address);
  trigger.count = *count;
  trigger.micros = *micros;
  trigger.one_shot = true;
  return trigger;
}

std::string SerializeExperimentSpec(const target::ExperimentSpec& spec) {
  std::string targets;
  for (std::size_t i = 0; i < spec.targets.size(); ++i) {
    if (i != 0) targets += "+";
    targets += spec.targets[i].location + ":" +
               std::to_string(spec.targets[i].bit);
  }
  return StrFormat(
      "name=%s;technique=%s;trigger=%s;targets=%s;model=%s;period=%llu;"
      "occurrences=%u;stuck=%d;max_instructions=%llu;max_iterations=%llu",
      spec.name.c_str(), target::TechniqueName(spec.technique),
      SerializeTrigger(spec.trigger).c_str(), targets.c_str(),
      target::FaultModelKindName(spec.model.kind),
      static_cast<unsigned long long>(spec.model.period),
      spec.model.occurrences, spec.model.stuck_to_one ? 1 : 0,
      static_cast<unsigned long long>(spec.termination.max_instructions),
      static_cast<unsigned long long>(spec.termination.max_iterations));
}

Result<target::ExperimentSpec> ParseExperimentSpec(const std::string& text) {
  target::ExperimentSpec spec;
  for (const std::string& piece : SplitString(text, ';')) {
    const std::size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      return ParseError("bad experiment data field '" + piece + "'");
    }
    const std::string key = piece.substr(0, eq);
    const std::string value = piece.substr(eq + 1);
    if (key == "name") {
      spec.name = value;
    } else if (key == "technique") {
      const auto technique = target::TechniqueFromName(value);
      if (!technique) return ParseError("bad technique '" + value + "'");
      spec.technique = *technique;
    } else if (key == "trigger") {
      ASSIGN_OR_RETURN(spec.trigger, ParseTrigger(value));
    } else if (key == "targets") {
      if (value.empty()) continue;
      for (const std::string& one : SplitString(value, '+')) {
        const std::size_t colon = one.rfind(':');
        if (colon == std::string::npos) {
          return ParseError("bad fault target '" + one + "'");
        }
        const auto bit = ParseUint64(one.substr(colon + 1));
        if (!bit) return ParseError("bad fault target '" + one + "'");
        target::FaultTarget target;
        target.location = one.substr(0, colon);
        target.bit = static_cast<std::uint32_t>(*bit);
        spec.targets.push_back(std::move(target));
      }
    } else if (key == "model") {
      const auto kind = target::FaultModelKindFromName(value);
      if (!kind) return ParseError("bad fault model '" + value + "'");
      spec.model.kind = *kind;
    } else if (key == "period") {
      const auto parsed = ParseUint64(value);
      if (!parsed) return ParseError("bad period");
      spec.model.period = *parsed;
    } else if (key == "occurrences") {
      const auto parsed = ParseUint64(value);
      if (!parsed) return ParseError("bad occurrences");
      spec.model.occurrences = static_cast<std::uint32_t>(*parsed);
    } else if (key == "stuck") {
      spec.model.stuck_to_one = value == "1";
    } else if (key == "max_instructions") {
      const auto parsed = ParseUint64(value);
      if (!parsed) return ParseError("bad max_instructions");
      spec.termination.max_instructions = *parsed;
    } else if (key == "max_iterations") {
      const auto parsed = ParseUint64(value);
      if (!parsed) return ParseError("bad max_iterations");
      spec.termination.max_iterations = *parsed;
    } else {
      return ParseError("unknown experiment data key '" + key + "'");
    }
  }
  return spec;
}

}  // namespace goofi::core
