// The analysis phase (paper §3.4): classify every logged experiment
// against the reference run.
//
//   Effective errors:
//     Detected  — caught by an error-detection mechanism of the target
//                 ("further classified into errors detected by each of
//                 the various mechanisms"),
//     Escaped   — escaped the mechanisms, causing "failures such as
//                 incorrect results or timeliness violations" (for the
//                 control workload, a wrong actuator value is a
//                 fail-silence violation).
//   Non-effective errors:
//     Latent      — state differs from the fault-free run but nothing
//                   detected/escaped,
//     Overwritten — no difference at all.
//
// The paper notes "there is no support for automatic generation of
// software that analyses the LoggedSystemState table. The user must
// write tailor made scripts"; this module is that tailor-made analysis
// for the Thor RD target (and the last §4 extension, automated).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/database.h"
#include "target/target_types.h"
#include "util/status.h"

namespace goofi::core {

enum class OutcomeClass {
  kDetected,
  kEscaped,
  kLatent,
  kOverwritten,
  // The sampled injection time lay beyond the (shortened) run, so the
  // fault was never injected. Reported separately for transparency;
  // counted with the non-effective outcomes.
  kNotInjected,
};

const char* OutcomeClassName(OutcomeClass outcome);

enum class EscapeKind {
  kWrongOutput,
  kFailSilenceViolation,  // actuator sequence diverged from the golden run
  kTimelinessViolation,   // tool-level time-out expired
};

const char* EscapeKindName(EscapeKind kind);

struct Classification {
  OutcomeClass outcome = OutcomeClass::kOverwritten;
  std::optional<sim::EdmType> detected_by;
  std::optional<EscapeKind> escape_kind;
  std::size_t state_diff_bits = 0;  // Hamming distance over chain images
};

// Classify one experiment against the fault-free reference.
Classification Classify(const target::Observation& reference,
                        const target::Observation& experiment);

// 95% Wilson score interval for a binomial proportion.
struct ConfidenceInterval {
  double estimate = 0.0;
  double low = 0.0;
  double high = 0.0;
};
ConfidenceInterval WilsonInterval95(std::size_t successes,
                                    std::size_t trials);

// Coarse location category for grouping ("reg", "control", "icache",
// "dcache", "pin", "memory", "?").
std::string LocationCategory(const std::string& location);

struct ExperimentResult {
  std::string name;
  std::string location;  // first fault target (empty if unparsable)
  std::string category;
  std::uint64_t injection_time = 0;  // instret triggers only
  Classification classification;
};

struct CampaignAnalysis {
  std::string campaign;
  std::size_t total = 0;
  std::size_t detected = 0;
  std::size_t escaped = 0;
  std::size_t latent = 0;
  std::size_t overwritten = 0;
  std::size_t not_injected = 0;
  std::map<std::string, std::size_t> detected_by_mechanism;
  std::size_t wrong_output = 0;
  std::size_t fail_silence = 0;
  std::size_t timeliness = 0;
  // detected / (detected + escaped): the error-detection coverage.
  ConfidenceInterval detection_coverage;
  // (detected + escaped) / total: how often a random fault mattered.
  ConfidenceInterval effectiveness;
  // per location category -> per outcome -> count
  std::map<std::string, std::map<OutcomeClass, std::size_t>> by_category;
  std::vector<ExperimentResult> experiments;
  // Detection latency (instructions from injection to EDM event), over
  // detected experiments with instruction-count triggers.
  std::size_t latency_samples = 0;
  double latency_mean = 0.0;
  std::uint64_t latency_max = 0;
  // Experiments the tool never completed (LoggedSystemState rows whose
  // tool_status is not "ok"). They carry no observation and are
  // excluded from `total` and from every outcome statistic above — the
  // paper's taxonomy only applies to tool-completed experiments.
  std::size_t tool_incomplete = 0;
  // Equivalence-partitioning extrapolation (`static_analysis =
  // equivalence` campaigns; `enabled` false otherwise). The measured
  // taxonomy above covers only the class representatives; these fields
  // extrapolate it to the full fault space by class weight.
  struct EquivalenceStats {
    bool enabled = false;
    std::size_t classes = 0;     // representatives measured
    std::size_t duplicates = 0;  // stub rows pruned by the partitioning
    // Duplicates whose representative row is missing or tool-incomplete
    // (a stopped/failed campaign): their classes have no outcome.
    std::size_t unresolved_duplicates = 0;
    // Summed class weights: how many (location, bit, time) fault points
    // the measured representatives stand in for.
    std::uint64_t space_weight = 0;
    // The measured taxonomy re-counted with each representative's class
    // weight — the extrapolated-to-full-space outcome distribution.
    std::uint64_t weighted_detected = 0;
    std::uint64_t weighted_escaped = 0;
    std::uint64_t weighted_latent = 0;
    std::uint64_t weighted_overwritten = 0;
    std::uint64_t weighted_not_injected = 0;
    // Weighted point estimates (the class-count Wilson intervals of the
    // measured taxonomy remain the uncertainty statement).
    double weighted_detection_coverage = 0.0;
    double weighted_effectiveness = 0.0;
    // Detection latency extrapolated over whole class spans: within a
    // class the latency varies linearly with the injection time, so a
    // class's mean latency is its representative's latency plus the
    // offset from the representative's time to the class midpoint.
    std::uint64_t extrapolated_latency_weight = 0;
    double extrapolated_latency_mean = 0.0;
  };
  EquivalenceStats equivalence;
};

// Load the campaign's rows from LoggedSystemState and classify them.
// Detail-mode re-runs (rows with a parentExperiment) are excluded from
// the statistics. Row selection uses the campaign_name secondary index
// when the schema declares one, and every count in the taxonomy is
// accumulated streaming, row by row; pass collect_experiments = false
// to skip materializing the per-experiment vector entirely (the CSV
// export and time histogram are the only consumers that need it).
Result<CampaignAnalysis> AnalyzeCampaign(db::Database& database,
                                         const std::string& campaign_name,
                                         bool collect_experiments = true);

// Human-readable report in the shape of the §3.4 taxonomy.
std::string FormatAnalysisReport(const CampaignAnalysis& analysis);

// Machine-readable per-experiment export: one CSV row per experiment
// (experiment, location, category, injection_time, outcome,
// detected_by, escape_kind, state_diff_bits) — for the "tailor made
// scripts" the paper expects users to write around the tool.
std::string FormatAnalysisCsv(const CampaignAnalysis& analysis);

// Outcomes bucketed by injection time (experiments with instruction-
// count triggers only): where in the workload's lifetime faults matter.
struct TimeHistogram {
  struct Bucket {
    std::uint64_t lo = 0;  // inclusive
    std::uint64_t hi = 0;  // inclusive
    std::size_t detected = 0;
    std::size_t escaped = 0;
    std::size_t latent = 0;
    std::size_t non_effective = 0;  // overwritten + never injected
  };
  std::vector<Bucket> buckets;
  std::size_t covered_experiments = 0;  // experiments with a known time
};

TimeHistogram BuildTimeHistogram(const CampaignAnalysis& analysis,
                                 std::size_t bucket_count);
std::string FormatTimeHistogram(const TimeHistogram& histogram);

}  // namespace goofi::core
