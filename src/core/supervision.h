// Campaign supervision: the fail-soft layer between the campaign loop
// and a flaky target.
//
// The paper's tool-level timeout (target/target_types.h TerminationSpec)
// bounds what the *workload* may do; this layer bounds what the *tool*
// may do. A campaign of thousands of unattended experiments must survive
// a wedged target instance, a transient test-card link failure or a
// poisoned experiment without discarding the rest of the plan — the
// supervision discipline FINJ treats as a first-class campaign-engine
// feature. Three mechanisms compose:
//
//   1. A per-experiment wall-clock watchdog (`experiment_timeout_ms`,
//      default derived from the workload's tool-level instruction
//      budget). An over-deadline run is classified as a tool-level
//      *hang* — strictly separate from the paper's error-outcome
//      taxonomy, which only applies to experiments the tool completed.
//   2. Retry with exponential backoff (`max_retries`,
//      `retry_backoff_ms`) for transient target/transport failures
//      (kTargetFault, kIo) and hangs.
//   3. Target quarantine: between attempts a fresh instance is minted
//      via target::TargetFactory, so a wedged instance is abandoned to
//      a background reaper instead of reused.
//
// Every experiment ends with an ExperimentDisposition (attempts, final
// tool status, quarantine count) persisted alongside the observation in
// LoggedSystemState, so campaign forensics can tell "the workload
// produced a wrong result" apart from "the tool never got an answer".
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "core/campaign.h"
#include "target/factory.h"
#include "util/status.h"

namespace goofi::core {

// ---- policy ------------------------------------------------------------

struct SupervisionPolicy {
  // Wall-clock deadline per experiment attempt. 0 = derive from the
  // effective tool-level instruction budget (DeriveExperimentTimeoutMs).
  std::uint64_t experiment_timeout_ms = 0;
  // Re-run attempts after a retryable failure (hang, kTargetFault, kIo).
  std::uint32_t max_retries = 0;
  // Base delay before retry attempt n sleeps backoff * 2^(n-1), capped
  // at kMaxBackoffMs. 0 = retry immediately.
  std::uint64_t retry_backoff_ms = 0;

  static constexpr std::uint64_t kMaxBackoffMs = 10'000;
};

// The default deadline for a workload whose tool-level budget is
// `max_instructions`: generous headroom over any simulated execution
// rate, so only genuine transport wedges trip it.
std::uint64_t DeriveExperimentTimeoutMs(std::uint64_t max_instructions);

// Resolve the campaign's supervision keys against the workload's
// tool-level termination defaults (spec beats workload beats the global
// budget, exactly like ThorRdTarget::ResolveTermination).
SupervisionPolicy ResolveSupervisionPolicy(
    const CampaignConfig& config, const target::TerminationSpec& workload);

// ---- per-experiment disposition ---------------------------------------

// Tool statuses, persisted in LoggedSystemState.tool_status. kOk means
// the tool completed the experiment and its observation is valid; every
// other value marks an *abandoned* experiment that the outcome taxonomy
// must skip.
inline constexpr const char* kToolStatusOk = "ok";
inline constexpr const char* kToolStatusHang = "hang";
inline constexpr const char* kToolStatusTargetFault = "target_fault";
inline constexpr const char* kToolStatusIo = "io";
// Not a failure: the experiment is an equivalence-class duplicate whose
// outcome is the representative row named by parent_experiment
// (core/runner, `static_analysis = equivalence`). No injection was run;
// attempts is 0 and state_vector NULL.
inline constexpr const char* kToolStatusEquivalent = "equiv";

struct ExperimentDisposition {
  std::uint32_t attempts = 1;        // total attempts (1 = first try)
  std::string tool_status = kToolStatusOk;  // final attempt's status
  std::uint32_t quarantined = 0;     // target instances abandoned/replaced

  bool completed() const { return tool_status == kToolStatusOk; }
  bool retried() const { return attempts > 1; }
};

// ---- the target slot ---------------------------------------------------

// The target a supervised loop drives. Owned slots (minted by a
// factory) can be abandoned to the reaper when a run wedges; borrowed
// slots (caller-owned serial targets) can only be classified, never
// abandoned — their timeouts are detected after the run returns.
struct TargetSlot {
  std::unique_ptr<target::TargetSystemInterface> owned;
  target::TargetSystemInterface* borrowed = nullptr;

  target::TargetSystemInterface* get() const {
    return owned != nullptr ? owned.get() : borrowed;
  }
  bool abandonable() const { return owned != nullptr; }

  static TargetSlot Borrow(target::TargetSystemInterface* target) {
    TargetSlot slot;
    slot.borrowed = target;
    return slot;
  }
  static TargetSlot Own(std::unique_ptr<target::TargetSystemInterface> t) {
    TargetSlot slot;
    slot.owned = std::move(t);
    return slot;
  }
};

// ---- the supervised run ------------------------------------------------

struct SupervisedOutcome {
  ExperimentDisposition disposition;
  // Valid only when disposition.completed().
  target::Observation observation;
  // The final attempt's error for an abandoned experiment (OK when
  // completed); recorded for diagnostics, never fatal to the campaign.
  Status last_error = Status::Ok();
};

// Run `spec` on the slot's target under `policy`. The spec and logging
// mode are (re)installed before every attempt; retryable failures
// (hang/kTargetFault/kIo) consume attempts, re-minting a fresh target
// via `factory` between attempts when one is available (the failed
// instance is quarantined). Non-retryable errors (bad spec, programming
// errors) and a failure to re-mint or re-configure a replacement target
// are returned as a campaign-fatal Status; everything else produces a
// SupervisedOutcome, abandoned or completed.
//
// `factory` may be empty (no quarantine; retries reuse the instance).
// A borrowed, non-abandonable slot detects deadline overruns only after
// the run returns.
//
// `start_snapshot` (checkpoint-fork execution, core/checkpoint.h) is
// installed on the target before *every* attempt — including on a
// freshly minted quarantine replacement — so retried runs fork from the
// same golden checkpoint as the first try. nullptr runs from reset.
Result<SupervisedOutcome> RunSupervisedExperiment(
    TargetSlot& slot, const target::ExperimentSpec& spec,
    const CampaignConfig& config, const SupervisionPolicy& policy,
    const target::TargetFactory& factory,
    std::shared_ptr<const sim::Snapshot> start_snapshot = nullptr);

// ---- the reaper --------------------------------------------------------

// Wedged target instances (and the threads still running them) are
// parked with a process-wide reaper when abandoned. They self-release
// when their run finally returns; these hooks let tests and front-ends
// observe and drain them deterministically instead of racing process
// exit.
std::size_t AbandonedTargetsInFlight();
bool WaitForAbandonedTargets(std::chrono::milliseconds timeout);

}  // namespace goofi::core
