#include "core/checkpoint.h"

#include <algorithm>
#include <limits>

namespace goofi::core {

void CheckpointStore::Add(sim::Snapshot snapshot) {
  if (!snapshots_.empty() &&
      snapshots_.back()->instret >= snapshot.instret) {
    return;
  }
  snapshots_.push_back(
      std::make_shared<const sim::Snapshot>(std::move(snapshot)));
}

std::shared_ptr<const sim::Snapshot> CheckpointStore::NearestAtOrBelow(
    std::uint64_t trigger, std::uint64_t* valid_lo,
    std::uint64_t* valid_hi) const {
  // First snapshot with instret > trigger; its predecessor is ours.
  const auto above = std::upper_bound(
      snapshots_.begin(), snapshots_.end(), trigger,
      [](std::uint64_t value,
         const std::shared_ptr<const sim::Snapshot>& snapshot) {
        return value < snapshot->instret;
      });
  if (above == snapshots_.begin()) return nullptr;
  const auto found = above - 1;
  if (valid_lo != nullptr) *valid_lo = (*found)->instret;
  if (valid_hi != nullptr) {
    *valid_hi = above != snapshots_.end()
                    ? (*above)->instret
                    : std::numeric_limits<std::uint64_t>::max();
  }
  return *found;
}

std::shared_ptr<const sim::Snapshot> CheckpointCache::ForTrigger(
    std::uint64_t trigger) {
  if (store_ == nullptr) return nullptr;
  if (last_ == nullptr || trigger < last_lo_ || trigger >= last_hi_) {
    last_ = store_->NearestAtOrBelow(trigger, &last_lo_, &last_hi_);
    if (last_ == nullptr) return nullptr;
  }
  ++forks_;
  instructions_skipped_ += last_->instret;
  return last_;
}

}  // namespace goofi::core
