// The GOOFI database schema (paper Fig. 4).
//
// Three tables linked by foreign keys: TargetSystemData ("all information
// about the target system required for setting up new fault injection
// campaigns"), CampaignData ("all the information needed to conduct a
// campaign") and LoggedSystemState ("the system state during and after an
// experiment"), whose `parentExperiment` attribute lets a detail-mode
// re-run E2 reference the campaign data of the original experiment E1.
//
// TargetLocation is a normalization of the location list inside
// TargetSystemData (one row per fault-injection location), so the
// analysis phase can query locations with plain SQL.
#pragma once

#include <string>

#include "db/database.h"
#include "util/status.h"

namespace goofi::core {

inline constexpr const char* kTargetSystemDataTable = "TargetSystemData";
inline constexpr const char* kTargetLocationTable = "TargetLocation";
inline constexpr const char* kCampaignDataTable = "CampaignData";
inline constexpr const char* kLoggedSystemStateTable = "LoggedSystemState";

// Create the four tables (idempotent: returns OK if they already exist
// with any shape; callers own migration concerns).
Status CreateGoofiSchema(db::Database& database);

// The CREATE TABLE script used by CreateGoofiSchema — exposed so tests
// and the documentation can show the schema as SQL.
const char* GoofiSchemaSql();

}  // namespace goofi::core
