// The fault-location space of a campaign: the user-selected subset of
// the target's locations (paper Fig. 6, "the user chooses the fault
// injection locations from a hierarchical list of possible locations"),
// restricted to what the chosen technique can physically reach, with
// uniform sampling over the covered *bits*.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "target/fault_injection_algorithms.h"
#include "target/target_types.h"
#include "util/rng.h"
#include "util/status.h"

namespace goofi::core {

class LocationSpace {
 public:
  struct Entry {
    target::TargetSystemInterface::LocationInfo info;
    std::uint64_t bit_count = 0;
    std::uint64_t cumulative_start = 0;  // first bit index in the space
  };

  // Which locations a technique can inject into; delegates to
  // target::TechniqueCanReach (the rule lives in the target layer so
  // the analysis-layer linter can apply it too).
  static bool TechniqueCanReach(
      target::Technique technique,
      const target::TargetSystemInterface::LocationInfo& info);

  // Build from a target's location list. `filters` are glob patterns
  // over location names; empty = everything reachable. Errors if the
  // result is empty.
  static Result<LocationSpace> Build(
      const std::vector<target::TargetSystemInterface::LocationInfo>& all,
      target::Technique technique,
      const std::vector<std::string>& filters);

  // A copy of this space reduced to the entries `keep` accepts (the
  // static pre-run analysis drops provably-dead locations this way).
  // May be empty (total_bits() == 0); callers decide how to react.
  LocationSpace Restricted(
      const std::function<
          bool(const target::TargetSystemInterface::LocationInfo&)>& keep)
      const;

  const std::vector<Entry>& entries() const { return entries_; }
  std::uint64_t total_bits() const { return total_bits_; }

  // Uniformly sample one bit of the space and name it as a FaultTarget.
  target::FaultTarget SampleBit(Rng& rng) const;

  // Deterministic mapping from a bit index (0..total_bits-1); SampleBit
  // is SampleIndex(rng.NextBelow(total_bits)).
  target::FaultTarget SampleIndex(std::uint64_t bit_index) const;

 private:
  std::vector<Entry> entries_;
  std::uint64_t total_bits_ = 0;
};

}  // namespace goofi::core
