// Sharded campaign execution: the serial fault-injection loop of
// core/runner.h fanned out over N worker threads, each driving its own
// target instance minted by a target::TargetFactory.
//
// The paper's campaign loop (Fig. 2) is one experiment at a time
// against one target. Our targets are simulated in-process, so a
// campaign's deterministic experiment plan shards freely: worker w
// claims the next unclaimed experiment index, samples its spec from
// the per-experiment RNG stream (campaign seed, index), runs it on its
// private target, and hands the observation to the single writer,
// which logs results to the SQL database *in canonical experiment
// order*. The resulting LoggedSystemState table is bit-identical to a
// serial run — same rows, same row order, same parentExperiment links
// — which tests/core/parallel_runner_test.cpp proves row for row.
//
// Controls compose with the serial ones: one CampaignController
// pauses/stops the whole fleet, ProgressInfo snapshots aggregate
// across workers (emitted in canonical order, value-copied), and
// checkpoint/Resume() work with sharded plans — resume skips
// already-logged experiments regardless of which worker (or worker
// count) logged them.
#pragma once

#include <cstddef>
#include <string>

#include "core/runner.h"
#include "target/factory.h"

namespace goofi::core {

class ParallelCampaignRunner {
 public:
  // `database` must outlive the runner and is only ever touched from
  // the thread that calls Run()/Resume() (the single writer). `factory`
  // mints one target per worker plus one for the reference run; `jobs`
  // is the worker count (clamped to >= 1; 1 degenerates to a serial
  // run through the same machinery).
  ParallelCampaignRunner(db::Database* database,
                         target::TargetFactory factory, std::size_t jobs);

  std::size_t jobs() const { return jobs_; }

  void set_progress_callback(ProgressCallback callback) {
    progress_ = std::move(callback);
  }
  void set_controller(CampaignController* controller) {
    controller_ = controller;
  }
  // Persist the database to `directory` after every `every_n` logged
  // experiments, counted in canonical order (same cadence as the
  // serial runner's checkpoints). With a WAL attached to `directory`
  // each checkpoint is a group-commit flush from the single writer, so
  // the log bytes are identical to a serial run's.
  void set_checkpoint(std::string directory, std::size_t every_n) {
    checkpoint_directory_ = std::move(directory);
    checkpoint_every_ = every_n;
  }
  // Force checkpoint-fork execution on or off for this runner's runs,
  // overriding the stored campaign's checkpoint_mode (execution-only;
  // the CampaignData row is untouched). std::nullopt honours the
  // campaign configuration. Worker count never affects results either
  // way: forked and replayed experiments log bit-identical rows.
  void set_checkpoint_fork(std::optional<bool> enabled) {
    checkpoint_override_ = enabled;
  }

  // Run a stored campaign end to end across the worker fleet.
  Result<CampaignSummary> Run(const std::string& campaign_name);

  // Continue a stopped campaign. The worker count may differ from the
  // run that was interrupted: already-logged experiments are identified
  // by canonical name and skipped wherever they came from.
  Result<CampaignSummary> Resume(const std::string& campaign_name);

 private:
  Result<CampaignSummary> RunInternal(const std::string& campaign_name,
                                      bool resume);

  db::Database* database_;
  target::TargetFactory factory_;
  std::size_t jobs_;
  ProgressCallback progress_;
  CampaignController* controller_ = nullptr;
  std::string checkpoint_directory_;
  std::size_t checkpoint_every_ = 0;
  std::optional<bool> checkpoint_override_;
};

}  // namespace goofi::core
