#include "core/parallel_runner.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/goofi_schema.h"

namespace goofi::core {

namespace {

// What one worker hands the writer for one claimed experiment index.
struct WorkerResult {
  target::ExperimentSpec spec;
  // Valid only when disposition.completed(); an abandoned experiment
  // still fills its reorder-buffer slot (with a non-ok tool status) so
  // the canonical cursor can always advance.
  target::Observation observation;
  ExperimentDisposition disposition;
  std::uint64_t resamples = 0;
  bool skipped = false;  // resume: already logged, nothing was run
  // Equivalence mode: this index is a duplicate of an earlier class
  // representative; nothing ran, the writer logs a stub row pointing at
  // the representative (whose index is in the shared plan).
  bool equivalent_dup = false;
  // Checkpoint-fork accounting, aggregated by the writer in canonical
  // order so the summary is independent of worker scheduling.
  bool forked = false;
  std::uint64_t instructions_skipped = 0;   // the fork's checkpoint instret
  std::uint64_t trigger_instructions = 0;   // instret triggers only
};

// The shard coordinator: claim order, the reorder buffer, and error
// propagation. All fields are guarded by `mutex` except the controller
// (its flags are atomics polled by everyone).
struct ShardState {
  std::mutex mutex;
  std::condition_variable results_ready;  // writer waits on this
  std::condition_variable claims_open;    // claim-throttled workers wait
  std::map<std::size_t, WorkerResult> results;  // reorder buffer
  std::size_t next_to_claim = 0;
  std::size_t next_to_log = 0;  // canonical-order cursor
  std::size_t workers_exited = 0;
  bool abort = false;  // first error wins; everyone drains and exits
  Status first_error = Status::Ok();

  // Keep the reorder buffer bounded: a worker may not claim index i
  // until the canonical cursor is within `window` of it. The worker
  // holding next_to_log has always already claimed, so the cursor can
  // always advance and the throttle cannot deadlock.
  static constexpr std::size_t kClaimWindowPerWorker = 8;
};

}  // namespace

ParallelCampaignRunner::ParallelCampaignRunner(db::Database* database,
                                               target::TargetFactory factory,
                                               std::size_t jobs)
    : database_(database),
      factory_(std::move(factory)),
      jobs_(std::max<std::size_t>(1, jobs)) {}

Result<CampaignSummary> ParallelCampaignRunner::Run(
    const std::string& campaign_name) {
  return RunInternal(campaign_name, /*resume=*/false);
}

Result<CampaignSummary> ParallelCampaignRunner::Resume(
    const std::string& campaign_name) {
  return RunInternal(campaign_name, /*resume=*/true);
}

Result<CampaignSummary> ParallelCampaignRunner::RunInternal(
    const std::string& campaign_name, bool resume) {
  // The reference run happens once, on a target of our own making, and
  // shares all the set-up logic with the serial runner.
  ASSIGN_OR_RETURN(std::unique_ptr<target::TargetSystemInterface> reference,
                   factory_());
  ASSIGN_OR_RETURN(PreparedCampaign prepared,
                   PrepareCampaignRun(*database_, reference.get(),
                                      campaign_name, resume,
                                      checkpoint_override_));
  const CampaignConfig& config = prepared.config;
  CampaignSummary& summary = prepared.summary;
  const ExperimentPlan plan = prepared.MakePlan();
  const std::size_t total = config.num_experiments;

  // Resume: the canonical names decide what is already logged, no
  // matter which worker (or how many) logged it before the interruption.
  // Precomputed here so worker threads never touch the database.
  std::vector<char> already_logged(total, 0);
  if (resume) {
    const db::Table* logged = database_->FindTable(kLoggedSystemStateTable);
    for (std::size_t i = 0; i < total; ++i) {
      already_logged[i] =
          logged->FindByUnique(0, db::Value::Text_(ExperimentName(
                                      campaign_name, i)))
              .has_value();
    }
  }

  const SupervisionPolicy policy =
      ResolveSupervisionPolicy(config, prepared.workload_termination);

  const std::size_t workers =
      std::max<std::size_t>(1, std::min<std::size_t>(jobs_, total));
  const std::size_t claim_window =
      std::max<std::size_t>(64, ShardState::kClaimWindowPerWorker * workers);

  ShardState shard;
  CampaignController* controller = controller_;

  auto worker_main = [&](std::size_t) {
    // Per-worker target with the workload installed (the factory may
    // have pre-installed one; installing the campaign's workload again
    // is idempotent and keeps every worker on the campaign's own). The
    // slot is owned, so the worker's supervised runs can abandon a
    // wedged instance to the reaper and quarantine-replace it.
    TargetSlot slot;
    // This worker's view of the shared checkpoint store (null-safe when
    // checkpoint-fork is off). A quarantine-replaced instance restores
    // the same shared snapshot, so the cache survives re-minting.
    CheckpointCache fork_cache(plan.checkpoints);
    {
      auto made = factory_();
      Status status = made.status();
      if (status.ok()) {
        slot = TargetSlot::Own(std::move(*made));
        status = ConfigureTargetWorkload(config, slot.get()).status();
      }
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.first_error.ok()) shard.first_error = status;
        shard.abort = true;
        ++shard.workers_exited;
        shard.results_ready.notify_all();
        shard.claims_open.notify_all();
        return;
      }
    }

    for (;;) {
      // Fig. 7 pause applies fleet-wide: every worker blocks between
      // experiments (the writer keeps emitting progress heartbeats).
      while (controller != nullptr && controller->paused() &&
             !controller->stopped()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }

      std::size_t index;
      {
        std::unique_lock<std::mutex> lock(shard.mutex);
        // Claim throttle; wait_for so an external Stop() is noticed
        // even though it cannot notify our condition variable.
        while (!shard.abort && shard.next_to_claim < total &&
               !(controller != nullptr && controller->stopped()) &&
               shard.next_to_claim >= shard.next_to_log + claim_window) {
          shard.claims_open.wait_for(lock, std::chrono::milliseconds(5));
        }
        if (shard.abort || shard.next_to_claim >= total ||
            (controller != nullptr && controller->stopped())) {
          ++shard.workers_exited;
          shard.results_ready.notify_all();
          return;
        }
        // Claims are strictly in order and every claim produces a
        // result, so on stop the logged experiments form a contiguous
        // prefix, exactly like a serial stop.
        index = shard.next_to_claim++;
      }

      WorkerResult result;
      if (!already_logged.empty() && already_logged[index]) {
        result.skipped = true;
      } else {
        auto spec =
            SampleExperimentSpec(plan, index, &result.resamples);
        Status status = spec.status();
        const PlannedEquivalence* equiv =
            plan.equivalence != nullptr && index < plan.equivalence->size()
                ? &(*plan.equivalence)[index]
                : nullptr;
        if (status.ok() && equiv != nullptr &&
            equiv->representative != index) {
          // Duplicate of an earlier representative: no injection runs.
          // The representative's index is lower, so the canonical-order
          // writer logs its row first with no extra coordination.
          result.spec = std::move(*spec);
          result.equivalent_dup = true;
          result.disposition.attempts = 0;
          result.disposition.tool_status = kToolStatusEquivalent;
        } else if (status.ok()) {
          std::shared_ptr<const sim::Snapshot> start_snapshot;
          if (spec->trigger.kind ==
              sim::Breakpoint::Kind::kInstretReached) {
            result.trigger_instructions = spec->trigger.count;
            start_snapshot = fork_cache.ForTrigger(spec->trigger.count);
            if (start_snapshot != nullptr) {
              result.forked = true;
              result.instructions_skipped = start_snapshot->instret;
            }
          }
          // Fail-soft per experiment: only non-retryable errors reach
          // `status` and abort the fleet. Retryable tool-level failures
          // are consumed here (retry + quarantine on this worker's own
          // slot) and surface as the result's disposition.
          auto outcome =
              RunSupervisedExperiment(slot, *spec, config, policy, factory_,
                                      std::move(start_snapshot));
          status = outcome.status();
          if (status.ok()) {
            result.spec = std::move(*spec);
            result.disposition = std::move(outcome->disposition);
            if (result.disposition.completed()) {
              result.observation = std::move(outcome->observation);
            }
          }
        }
        if (!status.ok()) {
          std::lock_guard<std::mutex> lock(shard.mutex);
          if (shard.first_error.ok()) shard.first_error = status;
          shard.abort = true;
          ++shard.workers_exited;
          shard.results_ready.notify_all();
          shard.claims_open.notify_all();
          return;
        }
      }

      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.results.emplace(index, std::move(result));
        shard.results_ready.notify_all();
      }
    }
  };

  std::vector<std::thread> fleet;
  fleet.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    fleet.emplace_back(worker_main, w);
  }

  // ---- the single writer (this thread) ---------------------------------
  // Pops the reorder buffer at the canonical cursor, so inserts into
  // LoggedSystemState happen in exactly the serial runner's order and
  // the stored table — and any dump of it — is bit-identical.
  ProgressInfo progress;
  progress.experiments_total = total;
  std::size_t skipped_existing = 0;
  Status writer_error = Status::Ok();
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    for (;;) {
      shard.results_ready.wait_for(lock, std::chrono::milliseconds(5), [&] {
        return shard.results.count(shard.next_to_log) != 0 ||
               shard.workers_exited == workers;
      });

      while (!shard.abort) {
        auto it = shard.results.find(shard.next_to_log);
        if (it == shard.results.end()) break;
        const std::size_t index = it->first;
        WorkerResult result = std::move(it->second);
        shard.results.erase(it);
        ++shard.next_to_log;
        shard.claims_open.notify_all();
        lock.unlock();

        if (result.skipped) {
          ++skipped_existing;
          ++progress.experiments_done;
        } else if (result.equivalent_dup) {
          // Mirror the serial runner's duplicate handling exactly: a
          // stub row naming the representative, counted as a processed
          // experiment but never as abandoned/retried/injected.
          summary.preinjection_resamples += result.resamples;
          const PlannedEquivalence& equiv = (*plan.equivalence)[index];
          Status status = LogExperimentObservation(
              *database_, result.spec.name,
              ExperimentName(campaign_name, equiv.representative),
              campaign_name, &result.spec, nullptr, &result.disposition,
              &equiv);
          if (status.ok()) {
            ++summary.experiments_run;
            progress.experiments_done =
                skipped_existing + summary.experiments_run;
            progress.current_experiment = result.spec.name;
            if (progress_) progress_(progress);
            if (checkpoint_every_ != 0 &&
                summary.experiments_run % checkpoint_every_ == 0) {
              status = database_->Persist(checkpoint_directory_);
            }
          }
          if (!status.ok()) {
            lock.lock();
            writer_error = status;
            shard.abort = true;
            shard.claims_open.notify_all();
            lock.unlock();
          }
        } else {
          summary.preinjection_resamples += result.resamples;
          const bool completed = result.disposition.completed();
          const PlannedEquivalence* equiv =
              plan.equivalence != nullptr && index < plan.equivalence->size()
                  ? &(*plan.equivalence)[index]
                  : nullptr;
          Status status = LogExperimentObservation(
              *database_, result.spec.name, "", campaign_name, &result.spec,
              completed ? &result.observation : nullptr,
              &result.disposition, equiv);
          if (status.ok()) {
            ++summary.experiments_run;
            summary.experiment_retries += result.disposition.attempts - 1;
            summary.targets_quarantined += result.disposition.quarantined;
            if (!completed) ++summary.experiments_abandoned;
            if (result.forked) ++summary.checkpoint_forks;
            summary.instructions_skipped += result.instructions_skipped;
            summary.trigger_instructions_total += result.trigger_instructions;
            progress.experiments_done =
                skipped_existing + summary.experiments_run;
            progress.experiment_retries = summary.experiment_retries;
            progress.experiments_abandoned = summary.experiments_abandoned;
            progress.targets_quarantined = summary.targets_quarantined;
            progress.checkpoint_forks = summary.checkpoint_forks;
            progress.instructions_skipped = summary.instructions_skipped;
            if (completed && result.observation.fault_was_injected) {
              ++progress.faults_injected;
            }
            progress.current_experiment = result.spec.name;
            if (progress_) progress_(progress);  // value snapshot
            if (checkpoint_every_ != 0 &&
                summary.experiments_run % checkpoint_every_ == 0) {
              status = database_->Persist(checkpoint_directory_);
            }
          }
          if (!status.ok()) {
            lock.lock();
            writer_error = status;
            shard.abort = true;
            shard.claims_open.notify_all();
            lock.unlock();
          }
        }
        lock.lock();
        if (shard.abort) break;
      }

      if (shard.abort && shard.workers_exited == workers) break;
      if (shard.workers_exited == workers &&
          shard.results.count(shard.next_to_log) == 0) {
        break;
      }
      // Heartbeat while paused, matching the serial pause loop's
      // repeated progress emissions.
      if (controller != nullptr && controller->paused() &&
          !controller->stopped() && progress_) {
        lock.unlock();
        progress_(progress);
        lock.lock();
      }
    }
  }
  for (std::thread& thread : fleet) thread.join();

  if (!writer_error.ok()) return writer_error;
  if (!shard.first_error.ok()) return shard.first_error;

  const std::size_t done = skipped_existing + summary.experiments_run;
  if (done < total) summary.experiments_stopped_early = total - done;
  // Drain: end at the last cadence checkpoint with no "stopped" write,
  // exactly like the serial runner — the database must look like a
  // SIGKILL at that commit so a resume stays byte-identical.
  if (controller != nullptr && controller->drain_requested()) {
    return summary;
  }
  RETURN_IF_ERROR(UpdateCampaignRunStatus(
      *database_, campaign_name,
      summary.experiments_stopped_early > 0 ? "stopped" : "completed",
      done));
  return summary;
}

}  // namespace goofi::core
