#include "core/location.h"

#include <cassert>

#include "util/strings.h"

namespace goofi::core {

using LocationInfo = target::TargetSystemInterface::LocationInfo;

bool LocationSpace::TechniqueCanReach(target::Technique technique,
                                      const LocationInfo& info) {
  return target::TechniqueCanReach(technique, info);
}

Result<LocationSpace> LocationSpace::Build(
    const std::vector<LocationInfo>& all, target::Technique technique,
    const std::vector<std::string>& filters) {
  LocationSpace space;
  for (const LocationInfo& info : all) {
    if (!TechniqueCanReach(technique, info)) continue;
    if (!filters.empty()) {
      bool matched = false;
      for (const std::string& filter : filters) {
        if (GlobMatch(filter, info.name)) {
          matched = true;
          break;
        }
      }
      if (!matched) continue;
    }
    Entry entry;
    entry.info = info;
    entry.bit_count = info.kind == LocationInfo::Kind::kScanElement
                          ? info.width_bits
                          : static_cast<std::uint64_t>(info.size) * 8;
    if (entry.bit_count == 0) continue;
    entry.cumulative_start = space.total_bits_;
    space.total_bits_ += entry.bit_count;
    space.entries_.push_back(std::move(entry));
  }
  if (space.total_bits_ == 0) {
    return InvalidArgumentError(
        "location filters select nothing the technique can inject into");
  }
  return space;
}

LocationSpace LocationSpace::Restricted(
    const std::function<bool(const LocationInfo&)>& keep) const {
  LocationSpace reduced;
  for (const Entry& entry : entries_) {
    if (!keep(entry.info)) continue;
    Entry kept = entry;
    kept.cumulative_start = reduced.total_bits_;
    reduced.total_bits_ += kept.bit_count;
    reduced.entries_.push_back(std::move(kept));
  }
  return reduced;
}

target::FaultTarget LocationSpace::SampleIndex(
    std::uint64_t bit_index) const {
  assert(bit_index < total_bits_);
  // Binary search over cumulative starts.
  std::size_t lo = 0;
  std::size_t hi = entries_.size();
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (entries_[mid].cumulative_start <= bit_index) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const Entry& entry = entries_[lo];
  const std::uint64_t offset = bit_index - entry.cumulative_start;
  target::FaultTarget target;
  if (entry.info.kind == LocationInfo::Kind::kScanElement) {
    target.location = entry.info.name;
    target.bit = static_cast<std::uint32_t>(offset);
  } else {
    const std::uint32_t byte =
        entry.info.base + static_cast<std::uint32_t>(offset / 8);
    target.location = StrFormat("mem@0x%08x", byte);
    target.bit = static_cast<std::uint32_t>(offset % 8);
  }
  return target;
}

target::FaultTarget LocationSpace::SampleBit(Rng& rng) const {
  return SampleIndex(rng.NextBelow(total_bits_));
}

}  // namespace goofi::core
