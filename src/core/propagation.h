// Error-propagation analysis over detail-mode traces.
//
// Paper §3.3: "The detail mode operation is used to produce an execution
// trace, allowing the error propagation to be analysed in detail."
//
// Given the per-instruction internal-chain images of a fault-free detail
// run and a fault-injected detail run, this module reports, per scan
// element, when the corruption first reached it and how the total number
// of corrupted bits evolved over time — the classic error-propagation
// curve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scan_chain.h"
#include "target/target_types.h"
#include "util/status.h"

namespace goofi::core {

struct ElementDivergence {
  std::string name;               // scan element
  std::string category;
  std::uint64_t first_time = 0;   // trace time of the first difference
  std::size_t peak_diff_bits = 0;
  bool still_corrupted_at_end = false;
};

struct PropagationReport {
  bool diverged = false;
  std::uint64_t first_divergence_time = 0;
  // Elements the corruption reached, ordered by first_time.
  std::vector<ElementDivergence> elements;
  // (time, total corrupted bits) — one point per traced instruction.
  std::vector<std::pair<std::uint64_t, std::size_t>> timeline;
  // Length of the compared prefix (traces may differ in length when the
  // fault changed control flow; the tail beyond the shorter one is not
  // compared bit-by-bit).
  std::size_t compared_steps = 0;
  bool lengths_differ = false;

  // Human-readable summary (first N propagation events + curve extremes).
  std::string Format(std::size_t max_elements = 20) const;
};

// `chain` describes the element layout of the traced images (the
// target's internal chain). Both traces must be detail-mode traces of
// the same workload: same time base, images of `chain`'s bit length.
Result<PropagationReport> AnalyzeErrorPropagation(
    const sim::ScanChain& chain,
    const std::vector<std::pair<std::uint64_t, BitVector>>& reference_trace,
    const std::vector<std::pair<std::uint64_t, BitVector>>& faulty_trace);

// Convenience overload on observations (uses their detail_trace).
Result<PropagationReport> AnalyzeErrorPropagation(
    const sim::ScanChain& chain, const target::Observation& reference,
    const target::Observation& faulty);

}  // namespace goofi::core
