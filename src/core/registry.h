// Target-system registry: how the tool knows which target systems are
// available (the paper's GUI lets the user "select a target system";
// our CLI and configs select by name).
//
// Targets register a factory under a unique name — either at startup
// (built-ins) or from a dynamically loaded plugin (core/plugin.h).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "target/fault_injection_algorithms.h"
#include "util/status.h"

namespace goofi::core {

class TargetRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<target::TargetSystemInterface>()>;

  // The process-wide registry (function-local static; the only global
  // mutable state in the library, per DESIGN.md §4).
  static TargetRegistry& Instance();

  Status Register(const std::string& name, Factory factory);
  bool Has(const std::string& name) const;
  Result<std::unique_ptr<target::TargetSystemInterface>> Create(
      const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::vector<std::pair<std::string, Factory>> factories_;
};

// Register the targets shipped with the library ("thor_rd"). Idempotent.
void RegisterBuiltinTargets(TargetRegistry& registry);

}  // namespace goofi::core
