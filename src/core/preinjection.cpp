#include "core/preinjection.h"

#include <algorithm>

#include "util/strings.h"

namespace goofi::core {

bool LivenessIntervals::Contains(std::uint64_t time) const {
  // Binary search over sorted disjoint spans.
  std::size_t lo = 0;
  std::size_t hi = spans.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (spans[mid].second < time) {
      lo = mid + 1;
    } else if (spans[mid].first > time) {
      hi = mid;
    } else {
      return true;
    }
  }
  return false;
}

std::uint64_t LivenessIntervals::TotalLiveTime() const {
  std::uint64_t total = 0;
  for (const auto& [first, last] : spans) total += last - first + 1;
  return total;
}

LivenessIntervals BuildIntervals(
    const std::vector<sim::AccessEvent>& events) {
  LivenessIntervals intervals;
  // Events arrive in program order (the CPU reports reads before writes
  // within one instruction). An injection at time t propagates to a read
  // at time r iff the last write before r happened at w < t <= r; i.e.
  // every read at r with previous write at w contributes the span
  // [w+1, r] ([0, r] when never written before).
  std::uint64_t window_start = 0;  // first live time for the next read
  for (const sim::AccessEvent& event : events) {
    if (event.is_write) {
      window_start = event.time + 1;
      continue;
    }
    const std::uint64_t span_first = window_start;
    const std::uint64_t span_last = event.time;
    if (span_first > span_last) continue;  // written and re-read same slot
    if (!intervals.spans.empty() &&
        intervals.spans.back().second + 1 >= span_first) {
      intervals.spans.back().second =
          std::max(intervals.spans.back().second, span_last);
    } else {
      intervals.spans.emplace_back(span_first, span_last);
    }
  }
  return intervals;
}

void PreInjectionAnalysis::Build(const sim::AccessRecorder& recorder,
                                 std::uint64_t end_time) {
  end_time_ = end_time;
  for (unsigned reg = 0; reg < 16; ++reg) {
    reg_intervals_[reg] = BuildIntervals(recorder.register_events(reg));
  }
  mem_intervals_.clear();
  for (const auto& [address, events] : recorder.memory_events()) {
    LivenessIntervals intervals = BuildIntervals(events);
    if (!intervals.spans.empty()) {
      mem_intervals_.emplace(address, std::move(intervals));
    }
  }
}

bool PreInjectionAnalysis::IsRegisterLive(unsigned reg,
                                          std::uint64_t time) const {
  if (reg == 0 || reg >= 16) return false;
  // Injection at or after the reference run's end never executes: the
  // sampled trigger cannot fire once the workload has halted.
  if (end_time_ != 0 && time >= end_time_) return false;
  return reg_intervals_[reg].Contains(time);
}

bool PreInjectionAnalysis::IsMemoryWordLive(std::uint32_t word_address,
                                            std::uint64_t time) const {
  if (end_time_ != 0 && time >= end_time_) return false;
  const auto it = mem_intervals_.find(word_address & ~3u);
  if (it == mem_intervals_.end()) return false;
  return it->second.Contains(time);
}

bool PreInjectionAnalysis::IsLive(const target::FaultTarget& target,
                                  std::uint64_t time) const {
  if (StartsWith(target.location, "cpu.regs.r")) {
    const auto reg = ParseUint64(target.location.substr(10));
    if (!reg || *reg >= 16) return false;
    return IsRegisterLive(static_cast<unsigned>(*reg), time);
  }
  if (StartsWith(target.location, "mem@")) {
    const auto address = ParseUint64(target.location.substr(4));
    if (!address) return false;
    const std::uint32_t byte =
        static_cast<std::uint32_t>(*address) + target.bit / 8;
    return IsMemoryWordLive(byte & ~3u, time);
  }
  // Non-architectural state: no liveness model — treat as live so the
  // filter never drops it.
  return true;
}

double PreInjectionAnalysis::RegisterLiveFraction() const {
  if (end_time_ == 0) return 0.0;
  std::uint64_t live = 0;
  for (unsigned reg = 1; reg < 16; ++reg) {
    live += reg_intervals_[reg].TotalLiveTime();
  }
  return static_cast<double>(live) /
         (15.0 * static_cast<double>(end_time_));
}

}  // namespace goofi::core
