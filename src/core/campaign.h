// Campaign configuration: the set-up phase of the tool.
//
// In the paper the user fills the configuration and set-up GUI windows
// (Figs. 5, 6); here campaigns are declarative config files (or structs
// built in code) whose contents are stored in — and re-read from — the
// CampaignData table, exactly as the GUI stores its selections
// ("The selections made by the user in the set-up phase are stored in
// the database table CampaignData").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.h"
#include "target/fault_injection_algorithms.h"
#include "target/target_types.h"
#include "util/config.h"
#include "util/status.h"

namespace goofi::core {

struct CampaignConfig {
  std::string name;
  std::string target = "thor_rd";
  target::Technique technique = target::Technique::kScifi;
  std::string workload;
  std::uint32_t num_experiments = 100;
  std::uint64_t seed = 1;

  target::FaultModel model;
  std::uint32_t multiplicity = 1;  // bits flipped per experiment

  // Access-path fault model name ("cache_data_bit", "cache_tag_bit",
  // "cache_parity_bit", "inflight_load_bit"; target/cache_target.h) when
  // the `fault_model` key names one instead of a temporal kind. Empty
  // for ordinary campaigns. It narrows the sampled location space to the
  // model's coordinate family (core/runner); the temporal model stays
  // `model` (transient for all four).
  std::string cache_fault_model;

  // Glob patterns over location names ("cpu.regs.*", "icache.*",
  // "mem.*"); empty = every writable location the technique can reach.
  std::vector<std::string> location_filters;

  // Injection-time window in executed instructions; 0,0 = the full
  // reference-run duration.
  std::uint64_t time_window_lo = 0;
  std::uint64_t time_window_hi = 0;
  // Trigger kind: "instret" (default), "pc", "data_read", "data_write",
  // "branch", "call", "rtc".
  std::string trigger_kind = "instret";

  // Termination overrides (0 = the workload's defaults).
  target::TerminationSpec termination{0, 0};

  target::LoggingMode logging_mode = target::LoggingMode::kNormal;

  // Paper §4 extension: sample only (location, time) points that hold
  // live data, using the reference run's access trace.
  bool use_preinjection_analysis = false;

  // Static counterpart (src/analysis): before any run, drop fault
  // locations the workload provably never reads (registers that are
  // dead on every static path). Strictly coarser than the dynamic
  // analysis above — the two compose.
  bool use_static_analysis = false;

  // `static_analysis = equivalence`: beyond pruning, partition the
  // fault space into def-use equivalence classes (analysis/equivalence)
  // and physically inject only one representative per class; every
  // other member is logged as a stub row pointing at its
  // representative. Implies use_static_analysis (and forces the
  // reference-run access trace to be recorded). The analysis stage
  // extrapolates class outcomes to the full space by class weight.
  bool use_equivalence = false;

  // How many parallel workers execute the campaign (`jobs` key; 1 =
  // the serial runner). An execution knob, not part of the campaign's
  // identity: the sharded runner's determinism guarantee makes any
  // worker count produce the same database, so this is deliberately
  // NOT stored in CampaignData and never affects results.
  std::uint32_t jobs = 1;

  // ---- supervision (core/supervision.h) ---------------------------------
  // Wall-clock watchdog deadline per experiment attempt, in ms. 0 =
  // derive from the workload's tool-level instruction budget. Unlike
  // `jobs`, these ARE stored in CampaignData: an abandoned experiment's
  // disposition depends on them, so they are part of the campaign record.
  std::uint64_t experiment_timeout_ms = 0;
  // Retries after a retryable tool-level failure (hang/target/transport);
  // 0 = fail an experiment on its first bad attempt.
  std::uint32_t max_retries = 0;
  // Base backoff before retry n: backoff * 2^(n-1), capped. 0 = none.
  std::uint64_t retry_backoff_ms = 0;

  // ---- checkpoint-fork execution (core/checkpoint.h) --------------------
  // Memoize the golden run as a series of snapshots and start each
  // experiment from the checkpoint nearest below its trigger instead of
  // replaying from reset. Results are bit-identical either way (the
  // dump-equality suite proves it), but like the supervision keys these
  // ARE stored in CampaignData: the stride is part of how the campaign
  // was executed, and resuming must reuse it.
  bool checkpoint_mode = false;
  // Instructions between recorded checkpoints. 0 = a tenth of the
  // workload's tool-level instruction budget.
  std::uint64_t checkpoint_stride = 0;
};

// ---- config file <-> struct ------------------------------------------
// File format: a [campaign] section, e.g.
//   [campaign]
//   name = regs_scifi
//   target = thor_rd
//   technique = scifi
//   workload = isort
//   experiments = 500
//   seed = 42
//   fault_model = transient
//   multiplicity = 1
//   location[] = cpu.regs.*
//   logging = normal
Result<CampaignConfig> ParseCampaignConfig(const ConfigSection& section);
Result<CampaignConfig> LoadCampaignConfigFile(const std::string& path);

// ---- database round trip -----------------------------------------------
// Insert (or error on duplicate) the campaign into CampaignData with
// status 'configured'. The target must already be registered.
Status StoreCampaign(db::Database& database, const CampaignConfig& config);
Result<CampaignConfig> LoadCampaign(db::Database& database,
                                    const std::string& campaign_name);

// Merge several stored campaigns into a new one (paper §3.2: "merge
// campaign data from several fault injection campaigns into a new fault
// injection campaign"): the new campaign takes base's settings, unions
// the location filters, and sums the experiment counts. All sources must
// share target/technique/workload.
Result<CampaignConfig> MergeCampaigns(
    db::Database& database, const std::vector<std::string>& sources,
    const std::string& merged_name);

// ---- target registration (configuration phase, paper Fig. 5) ----------
// Store the target's identity and its location list (TargetSystemData +
// TargetLocation rows). Idempotent per target name.
Status RegisterTargetSystem(db::Database& database,
                            target::TargetSystemInterface& target,
                            const std::string& test_card_name,
                            const std::string& description);

// The set-up phase's inverse (paper §3.2: "the corresponding target
// system data is interpreted presenting the user with an overview of
// the possible fault locations"): rebuild the location list from the
// stored TargetLocation rows, without a live target.
Result<std::vector<target::TargetSystemInterface::LocationInfo>>
LoadTargetLocations(db::Database& database, const std::string& target_name);

}  // namespace goofi::core
