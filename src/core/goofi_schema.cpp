#include "core/goofi_schema.h"

#include "db/sql/executor.h"

namespace goofi::core {

const char* GoofiSchemaSql() {
  return R"sql(
CREATE TABLE TargetSystemData (
  target_name    TEXT PRIMARY KEY,
  test_card_name TEXT NOT NULL,
  description    TEXT
);

CREATE TABLE TargetLocation (
  location_id   INTEGER PRIMARY KEY,
  target_name   TEXT NOT NULL,
  location_name TEXT NOT NULL,
  kind          TEXT NOT NULL,
  chain         TEXT,
  width_bits    INTEGER,
  writable      INTEGER NOT NULL,
  category      TEXT,
  base          INTEGER,
  size          INTEGER,
  FOREIGN KEY (target_name) REFERENCES TargetSystemData(target_name)
);

CREATE TABLE CampaignData (
  campaign_name            TEXT PRIMARY KEY,
  target_name              TEXT NOT NULL,
  technique                TEXT NOT NULL,
  workload                 TEXT NOT NULL,
  num_experiments          INTEGER NOT NULL,
  seed                     INTEGER NOT NULL,
  fault_model              TEXT NOT NULL,
  multiplicity             INTEGER NOT NULL,
  location_filter          TEXT,
  time_window_lo           INTEGER,
  time_window_hi           INTEGER,
  trigger_kind             TEXT,
  max_instructions         INTEGER,
  max_iterations           INTEGER,
  logging_mode             TEXT NOT NULL,
  preinjection             INTEGER NOT NULL,
  static_analysis          INTEGER,
  intermittent_period      INTEGER,
  intermittent_occurrences INTEGER,
  stuck_to_one             INTEGER,
  status                   TEXT NOT NULL,
  experiments_done         INTEGER NOT NULL,
  experiment_timeout_ms    INTEGER,
  max_retries              INTEGER,
  retry_backoff_ms         INTEGER,
  checkpoint_mode          INTEGER,
  checkpoint_stride        INTEGER,
  cache_fault_model        TEXT,
  FOREIGN KEY (target_name) REFERENCES TargetSystemData(target_name)
);

CREATE TABLE LoggedSystemState (
  experiment_name   TEXT PRIMARY KEY,
  parent_experiment TEXT INDEXED,
  campaign_name     TEXT NOT NULL INDEXED,
  experiment_data   TEXT,
  state_vector      TEXT,
  attempts          INTEGER,
  tool_status       TEXT INDEXED,
  quarantined       INTEGER,
  equiv_class       TEXT,
  equiv_weight      INTEGER,
  FOREIGN KEY (campaign_name) REFERENCES CampaignData(campaign_name),
  FOREIGN KEY (parent_experiment) REFERENCES LoggedSystemState(experiment_name)
);
)sql";
}

Status CreateGoofiSchema(db::Database& database) {
  if (database.HasTable(kTargetSystemDataTable) &&
      database.HasTable(kTargetLocationTable) &&
      database.HasTable(kCampaignDataTable) &&
      database.HasTable(kLoggedSystemStateTable)) {
    return Status::Ok();
  }
  const auto result = db::sql::ExecuteScript(database, GoofiSchemaSql());
  return result.ok() ? Status::Ok() : result.status();
}

}  // namespace goofi::core
