// Umbrella header: the public API of GOOFI++.
//
// A typical campaign, end to end:
//
//   goofi::db::Database database;
//   goofi::target::ThorRdTarget target;
//   target.SetWorkload(*goofi::target::GetBuiltinWorkload("isort"));
//
//   goofi::core::CampaignConfig config;       // set-up phase (Fig. 6)
//   config.name = "demo";
//   config.workload = "isort";
//   config.technique = goofi::target::Technique::kScifi;
//   config.num_experiments = 200;
//
//   goofi::core::RegisterTargetSystem(database, target, "sim-card", "");
//   goofi::core::StoreCampaign(database, config);
//
//   goofi::core::CampaignRunner runner(&database, &target);
//   auto summary = runner.FaultInjectorSCIFI("demo");  // FI phase (Fig. 2)
//
//   auto analysis = goofi::core::AnalyzeCampaign(database, "demo");
//   std::cout << goofi::core::FormatAnalysisReport(*analysis);
//
// See examples/quickstart.cpp for the runnable version.
#pragma once

#include "analysis/linter.h"
#include "analysis/static_liveness.h"
#include "core/analysis.h"
#include "core/campaign.h"
#include "core/crosscheck.h"
#include "core/experiment_codec.h"
#include "core/goofi_schema.h"
#include "core/location.h"
#include "core/parallel_runner.h"
#include "core/plugin.h"
#include "core/preinjection.h"
#include "core/propagation.h"
#include "core/registry.h"
#include "core/runner.h"
#include "db/database.h"
#include "db/sql/executor.h"
#include "target/environment.h"
#include "target/factory.h"
#include "target/framework_target.h"
#include "target/thor_rd_target.h"
#include "target/workloads.h"
