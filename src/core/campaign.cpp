#include "core/campaign.h"

#include <algorithm>

#include "core/goofi_schema.h"
#include "target/cache_target.h"
#include "util/strings.h"

namespace goofi::core {

using db::Row;
using db::Value;

Result<CampaignConfig> ParseCampaignConfig(const ConfigSection& section) {
  CampaignConfig config;
  const auto name = section.GetString("name");
  if (!name || name->empty()) {
    return InvalidArgumentError("campaign needs a name");
  }
  config.name = *name;
  config.target = section.GetStringOr("target", config.target);
  if (const auto technique = section.GetString("technique")) {
    const auto parsed = target::TechniqueFromName(*technique);
    if (!parsed) return InvalidArgumentError("unknown technique '" +
                                             *technique + "'");
    config.technique = *parsed;
  }
  config.workload = section.GetStringOr("workload", "");
  if (config.workload.empty()) {
    return InvalidArgumentError("campaign needs a workload");
  }
  config.num_experiments = static_cast<std::uint32_t>(
      section.GetIntOr("experiments", config.num_experiments));
  config.seed = static_cast<std::uint64_t>(
      section.GetIntOr("seed", static_cast<std::int64_t>(config.seed)));
  if (const auto model = section.GetString("fault_model")) {
    const auto parsed = target::FaultModelKindFromName(*model);
    if (parsed) {
      config.model.kind = *parsed;
    } else if (target::CacheFaultModelFromName(*model).has_value()) {
      // An access-path model: the name narrows the sampled location
      // family (core/runner); the temporal behaviour is a transient
      // flip applied by the injector on the access path.
      config.cache_fault_model = *model;
      config.model.kind = target::FaultModel::Kind::kTransientBitFlip;
    } else {
      return InvalidArgumentError("unknown fault model '" + *model + "'");
    }
  }
  config.model.period = static_cast<std::uint64_t>(section.GetIntOr(
      "intermittent_period", static_cast<std::int64_t>(config.model.period)));
  config.model.occurrences = static_cast<std::uint32_t>(section.GetIntOr(
      "intermittent_occurrences", config.model.occurrences));
  config.model.stuck_to_one = section.GetBoolOr("stuck_to_one", true);
  config.multiplicity = static_cast<std::uint32_t>(
      section.GetIntOr("multiplicity", config.multiplicity));
  if (config.multiplicity == 0) {
    return InvalidArgumentError("multiplicity must be >= 1");
  }
  config.location_filters = section.GetList("location");
  config.time_window_lo = static_cast<std::uint64_t>(
      section.GetIntOr("time_window_lo", 0));
  config.time_window_hi = static_cast<std::uint64_t>(
      section.GetIntOr("time_window_hi", 0));
  config.trigger_kind = section.GetStringOr("trigger", "instret");
  config.termination.max_instructions = static_cast<std::uint64_t>(
      section.GetIntOr("max_instructions", 0));
  config.termination.max_iterations = static_cast<std::uint64_t>(
      section.GetIntOr("max_iterations", 0));
  const std::string logging = section.GetStringOr("logging", "normal");
  if (EqualsIgnoreCase(logging, "normal")) {
    config.logging_mode = target::LoggingMode::kNormal;
  } else if (EqualsIgnoreCase(logging, "detail")) {
    config.logging_mode = target::LoggingMode::kDetail;
  } else {
    return InvalidArgumentError("unknown logging mode '" + logging + "'");
  }
  config.use_preinjection_analysis =
      section.GetBoolOr("preinjection", false);
  // `static_analysis` is historically a boolean but also accepts the
  // mode name "equivalence". Check the string first: GetBoolOr would
  // silently fall back to `false` on a non-boolean value.
  const std::string static_mode = section.GetStringOr("static_analysis", "");
  if (EqualsIgnoreCase(static_mode, "equivalence")) {
    config.use_static_analysis = true;
    config.use_equivalence = true;
  } else {
    config.use_static_analysis = section.GetBoolOr("static_analysis", false);
  }
  config.jobs = static_cast<std::uint32_t>(section.GetIntOr("jobs", 1));
  if (config.jobs == 0) {
    return InvalidArgumentError("jobs must be >= 1");
  }
  config.experiment_timeout_ms = static_cast<std::uint64_t>(
      section.GetIntOr("experiment_timeout_ms", 0));
  config.max_retries = static_cast<std::uint32_t>(
      section.GetIntOr("max_retries", 0));
  config.retry_backoff_ms = static_cast<std::uint64_t>(
      section.GetIntOr("retry_backoff_ms", 0));
  config.checkpoint_mode = section.GetBoolOr("checkpoint_mode", false);
  config.checkpoint_stride = static_cast<std::uint64_t>(
      section.GetIntOr("checkpoint_stride", 0));
  return config;
}

Result<CampaignConfig> LoadCampaignConfigFile(const std::string& path) {
  ASSIGN_OR_RETURN(Config config, Config::LoadFile(path));
  const ConfigSection* section = config.FindSection("campaign");
  if (section == nullptr) {
    return InvalidArgumentError("config file has no [campaign] section");
  }
  return ParseCampaignConfig(*section);
}

Status StoreCampaign(db::Database& database, const CampaignConfig& config) {
  RETURN_IF_ERROR(CreateGoofiSchema(database));
  Row row;
  row.push_back(Value::Text_(config.name));
  row.push_back(Value::Text_(config.target));
  row.push_back(Value::Text_(target::TechniqueName(config.technique)));
  row.push_back(Value::Text_(config.workload));
  row.push_back(Value::Integer(config.num_experiments));
  row.push_back(Value::Integer(static_cast<std::int64_t>(config.seed)));
  row.push_back(Value::Text_(target::FaultModelKindName(config.model.kind)));
  row.push_back(Value::Integer(config.multiplicity));
  row.push_back(Value::Text_(JoinStrings(config.location_filters, "|")));
  row.push_back(Value::Integer(static_cast<std::int64_t>(
      config.time_window_lo)));
  row.push_back(Value::Integer(static_cast<std::int64_t>(
      config.time_window_hi)));
  row.push_back(Value::Text_(config.trigger_kind));
  row.push_back(Value::Integer(static_cast<std::int64_t>(
      config.termination.max_instructions)));
  row.push_back(Value::Integer(static_cast<std::int64_t>(
      config.termination.max_iterations)));
  row.push_back(Value::Text_(
      config.logging_mode == target::LoggingMode::kDetail ? "detail"
                                                          : "normal"));
  row.push_back(Value::Integer(config.use_preinjection_analysis ? 1 : 0));
  // 0 = off, 1 = liveness pruning, 2 = equivalence partitioning.
  row.push_back(Value::Integer(config.use_equivalence          ? 2
                               : config.use_static_analysis ? 1
                                                            : 0));
  row.push_back(Value::Integer(static_cast<std::int64_t>(
      config.model.period)));
  row.push_back(Value::Integer(config.model.occurrences));
  row.push_back(Value::Integer(config.model.stuck_to_one ? 1 : 0));
  row.push_back(Value::Text_("configured"));
  row.push_back(Value::Integer(0));
  row.push_back(Value::Integer(static_cast<std::int64_t>(
      config.experiment_timeout_ms)));
  row.push_back(Value::Integer(config.max_retries));
  row.push_back(Value::Integer(static_cast<std::int64_t>(
      config.retry_backoff_ms)));
  row.push_back(Value::Integer(config.checkpoint_mode ? 1 : 0));
  row.push_back(Value::Integer(static_cast<std::int64_t>(
      config.checkpoint_stride)));
  row.push_back(Value::Text_(config.cache_fault_model));
  return database.Insert(kCampaignDataTable, std::move(row));
}

Result<CampaignConfig> LoadCampaign(db::Database& database,
                                    const std::string& campaign_name) {
  const db::Table* table = database.FindTable(kCampaignDataTable);
  if (table == nullptr) return NotFoundError("no CampaignData table");
  const auto index = table->FindByUnique(0, Value::Text_(campaign_name));
  if (!index) {
    return NotFoundError("no campaign '" + campaign_name + "'");
  }
  const Row& row = table->row(*index);
  CampaignConfig config;
  config.name = row[0].AsText();
  config.target = row[1].AsText();
  const auto technique = target::TechniqueFromName(row[2].AsText());
  if (!technique) return DataLossError("bad technique in CampaignData");
  config.technique = *technique;
  config.workload = row[3].AsText();
  config.num_experiments = static_cast<std::uint32_t>(row[4].AsInteger());
  config.seed = static_cast<std::uint64_t>(row[5].AsInteger());
  const auto model = target::FaultModelKindFromName(row[6].AsText());
  if (!model) return DataLossError("bad fault model in CampaignData");
  config.model.kind = *model;
  config.multiplicity = static_cast<std::uint32_t>(row[7].AsInteger());
  if (!row[8].is_null() && !row[8].AsText().empty()) {
    config.location_filters = SplitString(row[8].AsText(), '|');
  }
  config.time_window_lo = static_cast<std::uint64_t>(row[9].AsInteger());
  config.time_window_hi = static_cast<std::uint64_t>(row[10].AsInteger());
  config.trigger_kind = row[11].AsText();
  config.termination.max_instructions =
      static_cast<std::uint64_t>(row[12].AsInteger());
  config.termination.max_iterations =
      static_cast<std::uint64_t>(row[13].AsInteger());
  config.logging_mode = row[14].AsText() == "detail"
                            ? target::LoggingMode::kDetail
                            : target::LoggingMode::kNormal;
  config.use_preinjection_analysis = row[15].AsInteger() != 0;
  config.use_static_analysis =
      !row[16].is_null() && row[16].AsInteger() != 0;
  config.use_equivalence = !row[16].is_null() && row[16].AsInteger() == 2;
  config.model.period = static_cast<std::uint64_t>(row[17].AsInteger());
  config.model.occurrences = static_cast<std::uint32_t>(row[18].AsInteger());
  config.model.stuck_to_one = row[19].AsInteger() != 0;
  // Supervision keys (columns 22-24); absent/null in pre-supervision
  // databases, meaning "no watchdog override, no retries".
  if (row.size() > 22 && !row[22].is_null()) {
    config.experiment_timeout_ms =
        static_cast<std::uint64_t>(row[22].AsInteger());
  }
  if (row.size() > 23 && !row[23].is_null()) {
    config.max_retries = static_cast<std::uint32_t>(row[23].AsInteger());
  }
  if (row.size() > 24 && !row[24].is_null()) {
    config.retry_backoff_ms =
        static_cast<std::uint64_t>(row[24].AsInteger());
  }
  // Checkpoint-fork keys (columns 25-26); absent/null in databases from
  // before checkpoint execution existed, meaning "replay from reset".
  if (row.size() > 25 && !row[25].is_null()) {
    config.checkpoint_mode = row[25].AsInteger() != 0;
  }
  if (row.size() > 26 && !row[26].is_null()) {
    config.checkpoint_stride =
        static_cast<std::uint64_t>(row[26].AsInteger());
  }
  // Access-path fault model (column 27); absent/null in databases from
  // before the cache-hierarchy target existed.
  if (row.size() > 27 && !row[27].is_null()) {
    config.cache_fault_model = row[27].AsText();
  }
  return config;
}

Result<CampaignConfig> MergeCampaigns(db::Database& database,
                                      const std::vector<std::string>& sources,
                                      const std::string& merged_name) {
  if (sources.empty()) {
    return InvalidArgumentError("nothing to merge");
  }
  ASSIGN_OR_RETURN(CampaignConfig merged, LoadCampaign(database, sources[0]));
  merged.name = merged_name;
  for (std::size_t i = 1; i < sources.size(); ++i) {
    ASSIGN_OR_RETURN(CampaignConfig next, LoadCampaign(database, sources[i]));
    if (next.target != merged.target || next.workload != merged.workload ||
        next.technique != merged.technique) {
      return FailedPreconditionError(
          "campaigns to merge must share target, technique and workload");
    }
    merged.num_experiments += next.num_experiments;
    for (const std::string& filter : next.location_filters) {
      if (std::find(merged.location_filters.begin(),
                    merged.location_filters.end(),
                    filter) == merged.location_filters.end()) {
        merged.location_filters.push_back(filter);
      }
    }
  }
  RETURN_IF_ERROR(StoreCampaign(database, merged));
  return merged;
}

Status RegisterTargetSystem(db::Database& database,
                            target::TargetSystemInterface& target,
                            const std::string& test_card_name,
                            const std::string& description) {
  RETURN_IF_ERROR(CreateGoofiSchema(database));
  const db::Table* tsd = database.FindTable(kTargetSystemDataTable);
  if (tsd->FindByUnique(0, Value::Text_(target.target_name()))) {
    return Status::Ok();  // already registered
  }
  RETURN_IF_ERROR(database.Insert(
      kTargetSystemDataTable,
      {Value::Text_(target.target_name()), Value::Text_(test_card_name),
       Value::Text_(description)}));
  const db::Table* locations = database.FindTable(kTargetLocationTable);
  std::int64_t next_id =
      static_cast<std::int64_t>(locations->row_count()) + 1;
  for (const auto& info : target.ListLocations()) {
    Row row;
    row.push_back(Value::Integer(next_id++));
    row.push_back(Value::Text_(target.target_name()));
    row.push_back(Value::Text_(info.name));
    row.push_back(Value::Text_(
        info.kind ==
                target::TargetSystemInterface::LocationInfo::Kind::kScanElement
            ? "scan_element"
            : "memory_range"));
    row.push_back(Value::Text_(info.chain));
    row.push_back(Value::Integer(info.width_bits));
    row.push_back(Value::Integer(info.writable ? 1 : 0));
    row.push_back(Value::Text_(info.category));
    row.push_back(Value::Integer(info.base));
    row.push_back(Value::Integer(info.size));
    RETURN_IF_ERROR(database.Insert(kTargetLocationTable, std::move(row)));
  }
  return Status::Ok();
}

Result<std::vector<target::TargetSystemInterface::LocationInfo>>
LoadTargetLocations(db::Database& database,
                    const std::string& target_name) {
  using LocationInfo = target::TargetSystemInterface::LocationInfo;
  const db::Table* system = database.FindTable(kTargetSystemDataTable);
  if (system == nullptr ||
      !system->FindByUnique(0, Value::Text_(target_name))) {
    return NotFoundError("target '" + target_name +
                         "' is not registered in TargetSystemData");
  }
  const db::Table* table = database.FindTable(kTargetLocationTable);
  std::vector<LocationInfo> locations;
  for (const Row& row : table->rows()) {
    if (row[1].AsText() != target_name) continue;
    LocationInfo info;
    info.name = row[2].AsText();
    info.kind = row[3].AsText() == "scan_element"
                    ? LocationInfo::Kind::kScanElement
                    : LocationInfo::Kind::kMemoryRange;
    info.chain = row[4].is_null() ? "" : row[4].AsText();
    info.width_bits = static_cast<std::uint32_t>(row[5].AsInteger());
    info.writable = row[6].AsInteger() != 0;
    info.category = row[7].is_null() ? "" : row[7].AsText();
    info.base = static_cast<std::uint32_t>(row[8].AsInteger());
    info.size = static_cast<std::uint32_t>(row[9].AsInteger());
    locations.push_back(std::move(info));
  }
  return locations;
}

}  // namespace goofi::core
