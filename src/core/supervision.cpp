#include "core/supervision.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace goofi::core {

// Defined in runner.cpp; redeclared here so the supervision layer can
// re-configure a freshly minted replacement target without pulling in
// the whole runner header.
Result<target::WorkloadSpec> ConfigureTargetWorkload(
    const CampaignConfig& config, target::TargetSystemInterface* target);

namespace {

// Matches ThorRdTarget's global experiment budget: the bound that makes
// every simulated run finite even with all EDMs disabled.
constexpr std::uint64_t kGlobalInstructionBudget = 2'000'000;

// ---- the reaper -------------------------------------------------------
// Process-wide bookkeeping of abandoned (wedged) target instances. The
// detached thread that is still inside RunExperiment() owns its corpse;
// it destroys the instance and signs off here when the run finally
// returns.

std::mutex& ReaperMutex() {
  static std::mutex mutex;
  return mutex;
}
std::condition_variable& ReaperCv() {
  static std::condition_variable cv;
  return cv;
}
std::size_t g_abandoned_in_flight = 0;

void ReaperRegister() {
  std::lock_guard<std::mutex> lock(ReaperMutex());
  ++g_abandoned_in_flight;
}

void ReaperSignOff() {
  std::lock_guard<std::mutex> lock(ReaperMutex());
  --g_abandoned_in_flight;
  ReaperCv().notify_all();
}

// ---- one attempt ------------------------------------------------------

struct AttemptResult {
  enum class Kind {
    kCompleted,       // status OK, within the deadline
    kHang,            // over the deadline (run may still be in flight)
    kRetryableFault,  // kTargetFault / kIo
    kFatal,           // everything else: the campaign must see it
  };
  Kind kind = Kind::kCompleted;
  Status status = Status::Ok();
};

AttemptResult ClassifyReturnedStatus(const Status& status) {
  if (status.ok()) return {AttemptResult::Kind::kCompleted, Status::Ok()};
  if (status.code() == ErrorCode::kTargetFault ||
      status.code() == ErrorCode::kIo) {
    return {AttemptResult::Kind::kRetryableFault, status};
  }
  return {AttemptResult::Kind::kFatal, status};
}

// State shared between the supervisor and the watchdogged run thread.
// If the deadline expires, ownership of the wedged target moves in here
// and the (detached) thread reaps it when the run finally returns.
struct WatchdoggedRun {
  std::mutex mutex;
  std::condition_variable done_cv;
  bool done = false;
  bool abandoned = false;
  Status status = Status::Ok();
  std::unique_ptr<target::TargetSystemInterface> corpse;
};

// Run the slot's target with a wall-clock deadline. Owned slots run on
// a helper thread so an over-deadline instance can be abandoned (the
// slot comes back empty); borrowed slots run inline and can only be
// classified as overdue after the fact.
AttemptResult RunAttemptWithDeadline(TargetSlot& slot,
                                     std::uint64_t timeout_ms) {
  target::TargetSystemInterface* target = slot.get();
  if (!slot.abandonable() || timeout_ms == 0) {
    const auto started = std::chrono::steady_clock::now();
    const Status status = target->RunExperiment();
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    if (timeout_ms != 0 &&
        static_cast<std::uint64_t>(elapsed.count()) > timeout_ms) {
      return {AttemptResult::Kind::kHang, status};
    }
    return ClassifyReturnedStatus(status);
  }

  auto shared = std::make_shared<WatchdoggedRun>();
  std::thread runner([shared, target] {
    const Status status = target->RunExperiment();
    bool abandoned;
    {
      std::lock_guard<std::mutex> lock(shared->mutex);
      shared->status = status;
      shared->done = true;
      abandoned = shared->abandoned;
      shared->done_cv.notify_all();
    }
    if (abandoned) {
      {
        std::lock_guard<std::mutex> lock(shared->mutex);
        shared->corpse.reset();  // the wedged instance dies here
      }
      ReaperSignOff();
    }
  });

  std::unique_lock<std::mutex> lock(shared->mutex);
  const bool finished = shared->done_cv.wait_for(
      lock, std::chrono::milliseconds(timeout_ms),
      [&] { return shared->done; });
  if (finished) {
    lock.unlock();
    runner.join();
    return ClassifyReturnedStatus(shared->status);
  }
  // Deadline expired with the run still in flight: abandon thread and
  // target to the reaper. The slot is left empty; the supervisor must
  // re-mint before anything else runs.
  shared->abandoned = true;
  shared->corpse = std::move(slot.owned);
  ReaperRegister();
  lock.unlock();
  runner.detach();
  return {AttemptResult::Kind::kHang,
          InternalError("experiment exceeded its watchdog deadline")};
}

const char* ToolStatusForFault(const Status& status) {
  return status.code() == ErrorCode::kIo ? kToolStatusIo
                                         : kToolStatusTargetFault;
}

}  // namespace

std::uint64_t DeriveExperimentTimeoutMs(std::uint64_t max_instructions) {
  // Headroom of 1000 simulated instructions per wall-clock millisecond
  // — orders of magnitude slower than the simulator — plus a one-second
  // floor so short workloads never trip on scheduler noise.
  return std::max<std::uint64_t>(1000, max_instructions / 1000 + 100);
}

SupervisionPolicy ResolveSupervisionPolicy(
    const CampaignConfig& config, const target::TerminationSpec& workload) {
  SupervisionPolicy policy;
  policy.max_retries = config.max_retries;
  policy.retry_backoff_ms = config.retry_backoff_ms;
  if (config.experiment_timeout_ms != 0) {
    policy.experiment_timeout_ms = config.experiment_timeout_ms;
    return policy;
  }
  std::uint64_t budget = config.termination.max_instructions != 0
                             ? config.termination.max_instructions
                             : workload.max_instructions;
  if (budget == 0) budget = kGlobalInstructionBudget;
  policy.experiment_timeout_ms = DeriveExperimentTimeoutMs(budget);
  return policy;
}

Result<SupervisedOutcome> RunSupervisedExperiment(
    TargetSlot& slot, const target::ExperimentSpec& spec,
    const CampaignConfig& config, const SupervisionPolicy& policy,
    const target::TargetFactory& factory,
    std::shared_ptr<const sim::Snapshot> start_snapshot) {
  SupervisedOutcome outcome;
  for (std::uint32_t attempt = 1;; ++attempt) {
    outcome.disposition.attempts = attempt;
    target::TargetSystemInterface* target = slot.get();
    if (target == nullptr) {
      return InternalError("supervised target slot is empty");
    }
    target->set_experiment(spec);
    target->set_logging_mode(config.logging_mode);
    // Re-installed per attempt: a quarantine replacement minted below
    // must fork from the same checkpoint as the instance it replaces.
    target->set_start_snapshot(start_snapshot);
    const AttemptResult result = RunAttemptWithDeadline(
        slot, policy.experiment_timeout_ms);

    switch (result.kind) {
      case AttemptResult::Kind::kCompleted:
        outcome.disposition.tool_status = kToolStatusOk;
        outcome.observation = target->TakeObservation();
        outcome.last_error = Status::Ok();
        return outcome;
      case AttemptResult::Kind::kFatal:
        return result.status;
      case AttemptResult::Kind::kHang:
        outcome.disposition.tool_status = kToolStatusHang;
        outcome.last_error = result.status;
        break;
      case AttemptResult::Kind::kRetryableFault:
        outcome.disposition.tool_status = ToolStatusForFault(result.status);
        outcome.last_error = result.status;
        break;
    }

    // Quarantine the suspect instance: every failed attempt gets a
    // fresh target when a factory can mint one, so neither a retry nor
    // the next experiment inherits wedged state. Failure to re-mint or
    // re-configure the replacement is campaign-fatal — there is nothing
    // left to run on.
    if (factory) {
      ASSIGN_OR_RETURN(std::unique_ptr<target::TargetSystemInterface> fresh,
                       factory());
      RETURN_IF_ERROR(ConfigureTargetWorkload(config, fresh.get()).status());
      slot.owned = std::move(fresh);
      slot.borrowed = nullptr;
      ++outcome.disposition.quarantined;
    } else if (slot.get() == nullptr) {
      return InternalError(
          "target instance wedged and no factory is available to replace "
          "it; campaign cannot continue");
    }

    if (attempt > policy.max_retries) return outcome;  // abandoned

    if (policy.retry_backoff_ms != 0) {
      const std::uint32_t shift = std::min<std::uint32_t>(attempt - 1, 20);
      const std::uint64_t delay =
          std::min<std::uint64_t>(SupervisionPolicy::kMaxBackoffMs,
                                  policy.retry_backoff_ms << shift);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
}

std::size_t AbandonedTargetsInFlight() {
  std::lock_guard<std::mutex> lock(ReaperMutex());
  return g_abandoned_in_flight;
}

bool WaitForAbandonedTargets(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(ReaperMutex());
  return ReaperCv().wait_for(lock, timeout,
                             [] { return g_abandoned_in_flight == 0; });
}

}  // namespace goofi::core
