// goofi_serve's engine: a multi-tenant campaign scheduler over a shared
// worker fleet, with a socket front-end.
//
// Two classes, split so tests can drive scheduling without sockets:
//
//   ServiceCore    journal + fleet scheduler + campaign threads. Owns
//                  the WAL-backed submission journal (journal.h), claims
//                  queued submissions when fleet workers free up, and
//                  runs each claimed campaign on its own thread via the
//                  executor (executor.h) against its own results
//                  database under <root>/campaigns/<name>.
//   ServiceServer  accept loop + per-connection threads translating
//                  protocol frames (protocol.h) into ServiceCore calls.
//
// Robustness contract:
//   * SIGKILL at any instant: journal replay on the next Start()
//     reclassifies every committed submission; "running" rows resume
//     from their results database's last cadence checkpoint and finish
//     byte-identical to an uninterrupted run.
//   * Drain() (SIGTERM path): every active campaign stops at its next
//     experiment boundary WITHOUT committing its partial batch or
//     writing a status row — the results database is left exactly as a
//     SIGKILL at the last commit would leave it, so the two shutdown
//     paths converge on one recovery story.
//   * Client disconnects never touch campaigns: runs belong to the
//     fleet, connections only observe them.
//   * The queue is bounded: Submit past the limit fails with
//     kQueueFull instead of queueing unboundedly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/runner.h"
#include "service/journal.h"
#include "util/socket.h"
#include "util/status.h"

namespace goofi::service {

struct ServiceConfig {
  std::string root;              // journal/ and campaigns/ live here
  std::size_t fleet_workers = 4; // shared worker budget across campaigns
  std::size_t queue_limit = 16;  // queued+running bound (backpressure)
  std::size_t max_campaign_jobs = 4;  // per-campaign worker cap
};

// A point-in-time view of one submission, journal state + live progress.
struct SubmissionStatus {
  Submission submission;
  bool active = false;              // a campaign thread is running it
  std::size_t jobs_allocated = 0;   // fleet workers it currently holds
  std::size_t experiments_done = 0;
  std::size_t experiments_total = 0;
  std::size_t faults_injected = 0;
};

class ServiceCore {
 public:
  // Opens (or creates) the journal under <root>/journal, re-queues
  // nothing — rows already "running" from a killed daemon life are
  // scheduled first, as resumes — and starts the scheduler thread.
  // The service root is single-instance: Start takes an flock() on
  // <root>/lock and fails with kAlreadyExists while another live
  // daemon holds it, so a second goofi_serve can never steal the
  // socket and double-execute the same journal. (The lock dies with
  // the process, so a kill -9 leaves nothing to clean up.)
  static Result<std::unique_ptr<ServiceCore>> Start(ServiceConfig config);
  ~ServiceCore();

  ServiceCore(const ServiceCore&) = delete;
  ServiceCore& operator=(const ServiceCore&) = delete;

  // Validate the ini, journal it as "queued", return its id. Fails with
  // kQueueFull at the queue bound and kAlreadyExists on a duplicate
  // campaign name — the daemon never silently drops a submission.
  Result<std::uint64_t> Submit(const std::string& config_text);

  Result<SubmissionStatus> GetStatus(std::uint64_t id) const;
  std::vector<SubmissionStatus> List() const;

  // Cancel: a queued submission is journalled "cancelled" immediately;
  // a running one is stopped at its next experiment boundary (its
  // partial results database persists) and then journalled.
  Status Cancel(std::uint64_t id);
  // Fig. 7 controls, per campaign, byte-safe (pausing never commits).
  Status Pause(std::uint64_t id);
  Status Unpause(std::uint64_t id);

  // Graceful drain: stop claiming, drain every active campaign at its
  // next experiment boundary, join all threads. Idempotent. After
  // Drain() returns the journal still lists drained campaigns as
  // "running" — the next Start() resumes them.
  void Drain();
  bool draining() const { return draining_; }

  const ServiceConfig& config() const { return config_; }
  std::string CampaignDbDir(const std::string& name) const;

 private:
  explicit ServiceCore(ServiceConfig config) : config_(std::move(config)) {}

  struct ActiveCampaign {
    Submission submission;
    std::size_t jobs_allocated = 0;
    core::CampaignController controller;
    std::atomic<bool> finished{false};
    bool cancelled = false;  // guarded by mutex_
    core::ProgressInfo progress;  // guarded by mutex_
    std::thread thread;
  };

  void SchedulerLoop();
  void LaunchCampaign(Submission submission);
  void RunCampaignThread(ActiveCampaign* active);
  std::size_t JobsInUseLocked() const;

  ServiceConfig config_;
  int lock_fd_ = -1;  // flock()'d <root>/lock, held for the daemon's life
  mutable std::mutex mutex_;  // journal + actives + progress
  std::condition_variable wake_;
  std::unique_ptr<SubmissionJournal> journal_;
  std::vector<std::unique_ptr<ActiveCampaign>> active_;
  std::thread scheduler_;
  std::atomic<bool> draining_{false};
  bool drained_ = false;  // Drain() already completed
};

class ServiceServer {
 public:
  // Listen on `socket_path` and serve until Shutdown(). `on_drain` runs
  // when a client sends the "drain" verb (the daemon's main loop treats
  // it like SIGTERM).
  static Result<std::unique_ptr<ServiceServer>> Start(
      ServiceCore* core, const std::string& socket_path,
      std::function<void()> on_drain);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  // Stop accepting, wake every blocked connection, join all threads.
  // Running campaigns are untouched (they belong to ServiceCore).
  void Shutdown();

 private:
  // One live client connection: its serving thread, its socket (kept so
  // Shutdown() can wake a thread blocked in RecvFrame before joining
  // it), and a done flag the thread raises when it finishes so the
  // accept loop can reap the entry — a long-running daemon must not
  // accumulate an fd and a zombie thread per finished client.
  struct Connection {
    std::thread thread;
    std::shared_ptr<UnixSocket> socket;
    std::atomic<bool> done{false};
  };

  ServiceServer(ServiceCore* core, std::function<void()> on_drain)
      : core_(core), on_drain_(std::move(on_drain)) {}

  void AcceptLoop();
  void ReapFinishedConnections();
  void ServeConnection(Connection* connection);
  std::string HandleFrame(const std::string& frame,
                          const UnixSocket& connection);

  ServiceCore* core_;
  std::function<void()> on_drain_;
  UnixSocket listener_;
  std::thread accept_thread_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace goofi::service
