// Campaign execution for goofi_serve: one submitted campaign ini run
// (or resumed) against its own results database directory.
//
// The executor is deliberately the same flow as `goofi_tool run` — open
// or create the WAL database, register the target under the same
// "goofi-tool-card" serial, store the campaign row, run with the same
// commit cadence — so a results database produced under the daemon is
// byte-identical to one produced by a one-shot `goofi_tool run` of the
// same ini. That equality is the service's core robustness claim and
// what tests/service/restart_equivalence_test.cpp and the serve-smoke
// CI job diff.
//
// Resume is implicit: if the campaign row already exists in the results
// database (a previous daemon life was killed mid-run, leaving the last
// cadence checkpoint), the executor resumes instead of starting over.
#pragma once

#include <cstddef>
#include <string>

#include "core/runner.h"
#include "util/status.h"

namespace goofi::service {

// The runners' group-commit cadence, in experiments — identical to
// goofi_tool's so daemon-run and one-shot databases flush (and can be
// killed) at the same byte offsets.
inline constexpr std::size_t kCommitEveryExperiments = 32;

struct ExecutionRequest {
  std::string db_dir;       // results database directory
  std::string config_text;  // campaign ini (with its [campaign] section)
  // Worker allocation from the fleet scheduler (>= 1). Worker count
  // never affects the database bytes (the sharded runner's guarantee),
  // so the scheduler may allocate differently across daemon lives.
  std::size_t jobs = 1;
  core::CampaignController* controller = nullptr;  // may be null
  core::ProgressCallback progress;                 // may be empty
};

// Validate a submitted ini and extract its campaign name and requested
// jobs without running anything (what Submit() stores in the journal).
struct SubmissionInfo {
  std::string name;
  std::size_t jobs = 1;
};
Result<SubmissionInfo> InspectSubmission(const std::string& config_text);

// Run (or resume) the campaign. On a drain request the run ends at its
// last cadence commit and the final Persist is skipped — the database
// is left byte-identical to a SIGKILL at that commit, which is exactly
// the state Resume() reproduces from.
Result<core::CampaignSummary> ExecuteSubmission(
    const ExecutionRequest& request);

}  // namespace goofi::service
