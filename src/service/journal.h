// The submission journal: goofi_serve's crash-safe campaign queue.
//
// Every accepted submission becomes a row in a WAL-backed database
// (db/database.h) under <service root>/journal, and every lifecycle
// transition (queued -> running -> completed/failed, or -> cancelled)
// is one group commit. The daemon can therefore be SIGKILLed at any
// instant and replay the journal on restart: committed transitions
// survive, a torn tail truncates to the previous transition, and no
// submission is ever lost or duplicated (tests/service/
// journal_crash_test.cpp drives the same cut/torn-write sweeps as the
// storage engine's own crash harness).
//
// The journal holds two tables: SubmissionQueue (one row per
// submission, high churn) and ServiceMeta (written once at creation).
// The split is deliberate — it makes the journal the natural beneficiary
// of incremental compaction, where Compact() rewrites the hot queue
// table's snapshot but leaves the clean meta table's file untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/status.h"

namespace goofi::service {

inline constexpr const char* kSubmissionQueueTable = "SubmissionQueue";
inline constexpr const char* kServiceMetaTable = "ServiceMeta";

// Lifecycle states. A "running" row whose daemon died stays "running"
// in the journal and is resumed on restart — the results database's
// own checkpoints carry the fine-grained progress.
inline constexpr const char* kStateQueued = "queued";
inline constexpr const char* kStateRunning = "running";
inline constexpr const char* kStateCompleted = "completed";
inline constexpr const char* kStateFailed = "failed";
inline constexpr const char* kStateCancelled = "cancelled";

struct Submission {
  std::uint64_t id = 0;
  std::string name;         // campaign name (unique across the journal)
  std::string config_text;  // the submitted campaign ini, verbatim
  std::size_t jobs = 1;     // requested worker count
  std::string state;
  std::string error;        // failure detail (empty unless failed)
};

class SubmissionJournal {
 public:
  SubmissionJournal(SubmissionJournal&&) = default;
  SubmissionJournal& operator=(SubmissionJournal&&) = default;

  // Open (or create) the journal database in `dir`. `queue_limit`
  // bounds queued+running submissions; `factory` lets the crash tests
  // interpose a fault-injecting log file.
  static Result<SubmissionJournal> Open(
      const std::string& dir, std::size_t queue_limit,
      db::wal::WalFileFactory factory = nullptr);

  // Append a submission in state "queued" and commit. Fails with
  // kQueueFull when queued+running >= the queue limit (explicit
  // backpressure, never silent dropping) and kAlreadyExists when the
  // campaign name was ever submitted before.
  Result<std::uint64_t> Submit(const std::string& name,
                               const std::string& config_text,
                               std::size_t jobs);

  // Oldest queued submission -> "running" (committed), or nullopt when
  // the queue is empty.
  Result<std::optional<Submission>> ClaimNext();

  // Terminal transitions, each one commit. MarkCancelled is only valid
  // from "queued" or "running" (a cancelled running campaign keeps its
  // partial results database).
  Status MarkCompleted(std::uint64_t id);
  Status MarkFailed(std::uint64_t id, const std::string& error);
  Status MarkCancelled(std::uint64_t id);

  Result<Submission> Find(std::uint64_t id) const;
  std::vector<Submission> All() const;
  // Rows in a given state (e.g. "running" right after Open = campaigns
  // a previous daemon life was executing when it died).
  std::vector<Submission> InState(const std::string& state) const;
  // queued + running rows (what the queue bound counts).
  std::size_t ActiveCount() const;
  std::size_t queue_limit() const { return queue_limit_; }

  db::Database& database() { return database_; }

 private:
  SubmissionJournal(db::Database database, std::size_t queue_limit)
      : database_(std::move(database)), queue_limit_(queue_limit) {}

  Status SetState(std::uint64_t id, const std::string& state,
                  const std::string& error);

  db::Database database_;
  std::size_t queue_limit_;
  std::uint64_t next_id_ = 1;
};

}  // namespace goofi::service
