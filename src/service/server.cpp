#include "service/server.h"

#include <chrono>
#include <filesystem>

#include "service/executor.h"
#include "service/protocol.h"
#include "util/strings.h"

namespace goofi::service {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// ServiceCore
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ServiceCore>> ServiceCore::Start(
    ServiceConfig config) {
  if (config.fleet_workers == 0) {
    return InvalidArgumentError("fleet_workers must be >= 1");
  }
  if (config.max_campaign_jobs == 0 ||
      config.max_campaign_jobs > config.fleet_workers) {
    return InvalidArgumentError(
        "max_campaign_jobs must be in [1, fleet_workers]");
  }
  std::error_code ec;
  fs::create_directories(fs::path(config.root) / "campaigns", ec);
  if (ec) {
    return IoError("cannot create service root '" + config.root + "'");
  }
  std::unique_ptr<ServiceCore> core(new ServiceCore(std::move(config)));
  ASSIGN_OR_RETURN(
      SubmissionJournal journal,
      SubmissionJournal::Open(
          (fs::path(core->config_.root) / "journal").string(),
          core->config_.queue_limit));
  core->journal_ =
      std::make_unique<SubmissionJournal>(std::move(journal));
  // Campaigns a previous daemon life was executing when it died (or
  // drained): schedule them first. The executor resumes each from its
  // results database's last cadence checkpoint.
  {
    std::lock_guard<std::mutex> lock(core->mutex_);
    for (Submission& orphan : core->journal_->InState(kStateRunning)) {
      core->LaunchCampaign(std::move(orphan));
    }
  }
  core->scheduler_ = std::thread([ptr = core.get()] {
    ptr->SchedulerLoop();
  });
  return core;
}

ServiceCore::~ServiceCore() { Drain(); }

std::string ServiceCore::CampaignDbDir(const std::string& name) const {
  return (fs::path(config_.root) / "campaigns" / name).string();
}

std::size_t ServiceCore::JobsInUseLocked() const {
  std::size_t used = 0;
  for (const auto& active : active_) {
    if (!active->finished) used += active->jobs_allocated;
  }
  return used;
}

Result<std::uint64_t> ServiceCore::Submit(const std::string& config_text) {
  ASSIGN_OR_RETURN(const SubmissionInfo info,
                   InspectSubmission(config_text));
  std::unique_lock<std::mutex> lock(mutex_);
  if (draining_) {
    return FailedPreconditionError("daemon is draining; resubmit later");
  }
  ASSIGN_OR_RETURN(const std::uint64_t id,
                   journal_->Submit(info.name, config_text, info.jobs));
  lock.unlock();
  wake_.notify_all();
  return id;
}

Result<SubmissionStatus> ServiceCore::GetStatus(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Submission submission, journal_->Find(id));
  SubmissionStatus status;
  status.submission = std::move(submission);
  for (const auto& active : active_) {
    if (active->submission.id != id || active->finished) continue;
    status.active = true;
    status.jobs_allocated = active->jobs_allocated;
    status.experiments_done = active->progress.experiments_done;
    status.experiments_total = active->progress.experiments_total;
    status.faults_injected = active->progress.faults_injected;
  }
  return status;
}

std::vector<SubmissionStatus> ServiceCore::List() const {
  std::vector<SubmissionStatus> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (Submission& submission : journal_->All()) {
    SubmissionStatus status;
    status.submission = std::move(submission);
    for (const auto& active : active_) {
      if (active->submission.id != status.submission.id ||
          active->finished) {
        continue;
      }
      status.active = true;
      status.jobs_allocated = active->jobs_allocated;
      status.experiments_done = active->progress.experiments_done;
      status.experiments_total = active->progress.experiments_total;
      status.faults_injected = active->progress.faults_injected;
    }
    out.push_back(std::move(status));
  }
  return out;
}

Status ServiceCore::Cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& active : active_) {
    if (active->submission.id != id || active->finished) continue;
    // Running: stop at the next experiment boundary. The campaign
    // thread journals "cancelled" once the runner returns.
    active->cancelled = true;
    active->controller.Stop();
    return Status::Ok();
  }
  ASSIGN_OR_RETURN(const Submission submission, journal_->Find(id));
  if (submission.state != kStateQueued) {
    return FailedPreconditionError("submission " + std::to_string(id) +
                                   " is " + submission.state);
  }
  return journal_->MarkCancelled(id);
}

Status ServiceCore::Pause(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& active : active_) {
    if (active->submission.id != id || active->finished) continue;
    active->controller.Pause();
    return Status::Ok();
  }
  return FailedPreconditionError("submission " + std::to_string(id) +
                                 " is not running");
}

Status ServiceCore::Unpause(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& active : active_) {
    if (active->submission.id != id || active->finished) continue;
    active->controller.Resume();
    return Status::Ok();
  }
  return FailedPreconditionError("submission " + std::to_string(id) +
                                 " is not running");
}

void ServiceCore::LaunchCampaign(Submission submission) {
  // Caller holds mutex_. Allocation: what the campaign asked for,
  // capped per-campaign and by what the fleet has free right now. The
  // allocation can differ between daemon lives — worker count never
  // affects the results database bytes.
  auto active = std::make_unique<ActiveCampaign>();
  active->submission = std::move(submission);
  const std::size_t available = config_.fleet_workers - JobsInUseLocked();
  active->jobs_allocated = std::max<std::size_t>(
      1, std::min({active->submission.jobs, config_.max_campaign_jobs,
                   std::max<std::size_t>(1, available)}));
  ActiveCampaign* raw = active.get();
  active_.push_back(std::move(active));
  raw->thread = std::thread([this, raw] { RunCampaignThread(raw); });
}

void ServiceCore::RunCampaignThread(ActiveCampaign* active) {
  ExecutionRequest request;
  request.db_dir = CampaignDbDir(active->submission.name);
  request.config_text = active->submission.config_text;
  request.jobs = active->jobs_allocated;
  request.controller = &active->controller;
  request.progress = [this, active](core::ProgressInfo info) {
    std::lock_guard<std::mutex> lock(mutex_);
    active->progress = std::move(info);
  };
  const auto summary = ExecuteSubmission(request);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Drained: the journal row stays "running" so the next daemon life
    // resumes it. Anything journalled here is one committed transition.
    if (!active->controller.drain_requested()) {
      Status journalled = Status::Ok();
      if (!summary.ok()) {
        journalled = journal_->MarkFailed(active->submission.id,
                                          summary.status().ToString());
      } else if (active->cancelled) {
        journalled = journal_->MarkCancelled(active->submission.id);
      } else {
        journalled = journal_->MarkCompleted(active->submission.id);
      }
      (void)journalled;  // journal errors must not tear down the fleet
    }
    active->finished = true;
  }
  wake_.notify_all();
}

void ServiceCore::SchedulerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!draining_) {
    // Reap finished campaign threads so their fleet workers free up.
    for (auto it = active_.begin(); it != active_.end();) {
      if ((*it)->finished && (*it)->thread.joinable()) {
        std::thread finished = std::move((*it)->thread);
        lock.unlock();
        finished.join();
        lock.lock();
        it = active_.erase(it);
      } else {
        ++it;
      }
    }
    // Claim while workers are free. Each claim is one committed journal
    // transition; a crash right after it resumes the campaign next life.
    while (!draining_ && JobsInUseLocked() < config_.fleet_workers) {
      auto claimed = journal_->ClaimNext();
      if (!claimed.ok() || !claimed->has_value()) break;
      LaunchCampaign(std::move(**claimed));
    }
    wake_.wait_for(lock, 20ms);
  }
}

void ServiceCore::Drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (drained_) return;
    draining_ = true;
    for (const auto& active : active_) {
      if (!active->finished) active->controller.Drain();
    }
  }
  wake_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  // The scheduler has exited; campaign threads finish at their next
  // experiment boundary.
  for (const auto& active : active_) {
    if (active->thread.joinable()) active->thread.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  active_.clear();
  drained_ = true;
}

// ---------------------------------------------------------------------------
// ServiceServer
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ServiceServer>> ServiceServer::Start(
    ServiceCore* core, const std::string& socket_path,
    std::function<void()> on_drain) {
  std::unique_ptr<ServiceServer> server(
      new ServiceServer(core, std::move(on_drain)));
  ASSIGN_OR_RETURN(server->listener_, UnixSocket::Listen(socket_path));
  server->accept_thread_ = std::thread([ptr = server.get()] {
    ptr->AcceptLoop();
  });
  return server;
}

ServiceServer::~ServiceServer() { Shutdown(); }

void ServiceServer::Shutdown() {
  if (shutdown_.exchange(true)) return;
  listener_.Shutdown();
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::pair<std::thread, std::shared_ptr<UnixSocket>>>
      connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (auto& [thread, socket] : connections) {
    socket->Shutdown();  // wake a RecvFrame-blocked thread
    if (thread.joinable()) thread.join();
  }
}

void ServiceServer::AcceptLoop() {
  while (!shutdown_) {
    auto connection = listener_.Accept();
    if (!connection.ok()) break;  // Shutdown() closed the listener
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) break;
    auto socket = std::make_shared<UnixSocket>(std::move(*connection));
    std::thread thread([this, socket] { ServeConnection(*socket); });
    connections_.emplace_back(std::move(thread), socket);
  }
}

void ServiceServer::ServeConnection(const UnixSocket& connection) {
  // One request frame -> one (or, for watch, many) response frames.
  // Any client death — clean close, mid-frame kill — just ends this
  // loop; the campaigns it submitted or watched keep running.
  while (!shutdown_) {
    auto frame = connection.RecvFrame();
    if (!frame.ok()) break;
    const std::string reply = HandleFrame(*frame, connection);
    if (!reply.empty() && !connection.SendFrame(reply).ok()) break;
  }
}

std::string ServiceServer::HandleFrame(const std::string& frame,
                                       const UnixSocket& connection) {
  auto request = ParseRequest(frame);
  if (!request.ok()) return FormatError(request.status());

  if (request->verb == "ping") return FormatOk("pong");

  if (request->verb == "submit") {
    auto id = core_->Submit(request->body);
    if (!id.ok()) return FormatError(id.status());
    return FormatOk("id " + std::to_string(*id));
  }

  if (request->verb == "status") {
    if (request->has_id) {
      auto status = core_->GetStatus(request->id);
      if (!status.ok()) return FormatError(status.status());
      return FormatOk(StrFormat(
          "%llu %s %s %zu/%zu jobs=%zu",
          static_cast<unsigned long long>(status->submission.id),
          status->submission.name.c_str(),
          status->submission.state.c_str(), status->experiments_done,
          status->experiments_total, status->jobs_allocated));
    }
    std::string listing;
    for (const SubmissionStatus& status : core_->List()) {
      listing += StrFormat(
          "%llu %s %s %zu/%zu jobs=%zu\n",
          static_cast<unsigned long long>(status.submission.id),
          status.submission.name.c_str(),
          status.submission.state.c_str(), status.experiments_done,
          status.experiments_total, status.jobs_allocated);
    }
    return FormatOk(listing.empty() ? "empty" : "\n" + listing);
  }

  if (request->verb == "cancel") {
    if (!request->has_id) return FormatError(InvalidArgumentError("cancel <id>"));
    const Status status = core_->Cancel(request->id);
    return status.ok() ? FormatOk("cancelling") : FormatError(status);
  }
  if (request->verb == "pause") {
    if (!request->has_id) return FormatError(InvalidArgumentError("pause <id>"));
    const Status status = core_->Pause(request->id);
    return status.ok() ? FormatOk("paused") : FormatError(status);
  }
  if (request->verb == "unpause") {
    if (!request->has_id) {
      return FormatError(InvalidArgumentError("unpause <id>"));
    }
    const Status status = core_->Unpause(request->id);
    return status.ok() ? FormatOk("running") : FormatError(status);
  }

  if (request->verb == "watch") {
    if (!request->has_id) return FormatError(InvalidArgumentError("watch <id>"));
    // Stream progress until the journal state is terminal. Errors on
    // the connection just end the stream; the campaign is unaffected.
    for (;;) {
      auto status = core_->GetStatus(request->id);
      if (!status.ok()) return FormatError(status.status());
      const std::string& state = status->submission.state;
      if (state != kStateQueued && state != kStateRunning) {
        return "end " + state;
      }
      if (!connection
               .SendFrame(StrFormat("progress %zu %zu %zu",
                                    status->experiments_done,
                                    status->experiments_total,
                                    status->faults_injected))
               .ok()) {
        return std::string();
      }
      std::this_thread::sleep_for(50ms);
      if (shutdown_) return std::string();
    }
  }

  if (request->verb == "drain") {
    if (on_drain_) on_drain_();
    return FormatOk("draining");
  }

  return FormatError(
      InvalidArgumentError("unknown verb '" + request->verb + "'"));
}

}  // namespace goofi::service
