#include "service/server.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <filesystem>

#include "service/executor.h"
#include "service/protocol.h"
#include "util/strings.h"

namespace goofi::service {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// ServiceCore
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ServiceCore>> ServiceCore::Start(
    ServiceConfig config) {
  if (config.fleet_workers == 0) {
    return InvalidArgumentError("fleet_workers must be >= 1");
  }
  if (config.max_campaign_jobs == 0 ||
      config.max_campaign_jobs > config.fleet_workers) {
    return InvalidArgumentError(
        "max_campaign_jobs must be in [1, fleet_workers]");
  }
  std::error_code ec;
  fs::create_directories(fs::path(config.root) / "campaigns", ec);
  if (ec) {
    return IoError("cannot create service root '" + config.root + "'");
  }
  // Single-instance lock before touching the journal or the socket: two
  // daemons on one root would double-execute submissions and corrupt
  // the WAL. flock is owned by the open file description, so it
  // vanishes on any exit, kill -9 included.
  const std::string lock_path = (fs::path(config.root) / "lock").string();
  const int lock_fd =
      ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd < 0) {
    return IoError("cannot open '" + lock_path + "'");
  }
  if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
    const int saved = errno;
    ::close(lock_fd);
    if (saved == EWOULDBLOCK) {
      return AlreadyExistsError("another goofi_serve already owns '" +
                                config.root + "'");
    }
    return IoError("cannot lock '" + lock_path + "'");
  }
  std::unique_ptr<ServiceCore> core(new ServiceCore(std::move(config)));
  core->lock_fd_ = lock_fd;
  ASSIGN_OR_RETURN(
      SubmissionJournal journal,
      SubmissionJournal::Open(
          (fs::path(core->config_.root) / "journal").string(),
          core->config_.queue_limit));
  core->journal_ =
      std::make_unique<SubmissionJournal>(std::move(journal));
  // Campaigns a previous daemon life was executing when it died (or
  // drained): schedule them first. The executor resumes each from its
  // results database's last cadence checkpoint.
  {
    std::lock_guard<std::mutex> lock(core->mutex_);
    for (Submission& orphan : core->journal_->InState(kStateRunning)) {
      core->LaunchCampaign(std::move(orphan));
    }
  }
  core->scheduler_ = std::thread([ptr = core.get()] {
    ptr->SchedulerLoop();
  });
  return core;
}

ServiceCore::~ServiceCore() {
  Drain();
  if (lock_fd_ >= 0) ::close(lock_fd_);  // releases the flock
}

std::string ServiceCore::CampaignDbDir(const std::string& name) const {
  return (fs::path(config_.root) / "campaigns" / name).string();
}

std::size_t ServiceCore::JobsInUseLocked() const {
  std::size_t used = 0;
  for (const auto& active : active_) {
    if (!active->finished) used += active->jobs_allocated;
  }
  return used;
}

Result<std::uint64_t> ServiceCore::Submit(const std::string& config_text) {
  ASSIGN_OR_RETURN(const SubmissionInfo info,
                   InspectSubmission(config_text));
  std::unique_lock<std::mutex> lock(mutex_);
  if (draining_) {
    return FailedPreconditionError("daemon is draining; resubmit later");
  }
  ASSIGN_OR_RETURN(const std::uint64_t id,
                   journal_->Submit(info.name, config_text, info.jobs));
  lock.unlock();
  wake_.notify_all();
  return id;
}

Result<SubmissionStatus> ServiceCore::GetStatus(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Submission submission, journal_->Find(id));
  SubmissionStatus status;
  status.submission = std::move(submission);
  for (const auto& active : active_) {
    if (active->submission.id != id || active->finished) continue;
    status.active = true;
    status.jobs_allocated = active->jobs_allocated;
    status.experiments_done = active->progress.experiments_done;
    status.experiments_total = active->progress.experiments_total;
    status.faults_injected = active->progress.faults_injected;
  }
  return status;
}

std::vector<SubmissionStatus> ServiceCore::List() const {
  std::vector<SubmissionStatus> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (Submission& submission : journal_->All()) {
    SubmissionStatus status;
    status.submission = std::move(submission);
    for (const auto& active : active_) {
      if (active->submission.id != status.submission.id ||
          active->finished) {
        continue;
      }
      status.active = true;
      status.jobs_allocated = active->jobs_allocated;
      status.experiments_done = active->progress.experiments_done;
      status.experiments_total = active->progress.experiments_total;
      status.faults_injected = active->progress.faults_injected;
    }
    out.push_back(std::move(status));
  }
  return out;
}

Status ServiceCore::Cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& active : active_) {
    if (active->submission.id != id || active->finished) continue;
    // Running: stop at the next experiment boundary. The campaign
    // thread journals "cancelled" once the runner returns.
    active->cancelled = true;
    active->controller.Stop();
    return Status::Ok();
  }
  ASSIGN_OR_RETURN(const Submission submission, journal_->Find(id));
  if (submission.state != kStateQueued) {
    return FailedPreconditionError("submission " + std::to_string(id) +
                                   " is " + submission.state);
  }
  return journal_->MarkCancelled(id);
}

Status ServiceCore::Pause(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& active : active_) {
    if (active->submission.id != id || active->finished) continue;
    active->controller.Pause();
    return Status::Ok();
  }
  return FailedPreconditionError("submission " + std::to_string(id) +
                                 " is not running");
}

Status ServiceCore::Unpause(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& active : active_) {
    if (active->submission.id != id || active->finished) continue;
    active->controller.Resume();
    return Status::Ok();
  }
  return FailedPreconditionError("submission " + std::to_string(id) +
                                 " is not running");
}

void ServiceCore::LaunchCampaign(Submission submission) {
  // Caller holds mutex_. Allocation: what the campaign asked for,
  // capped per-campaign and by what the fleet has free right now. The
  // allocation can differ between daemon lives — worker count never
  // affects the results database bytes.
  auto active = std::make_unique<ActiveCampaign>();
  active->submission = std::move(submission);
  // Saturating: orphan resumes at Start() can oversubscribe the fleet
  // (every recovered campaign gets at least one job), so `used` may
  // already exceed the budget.
  const std::size_t used = JobsInUseLocked();
  const std::size_t available =
      used >= config_.fleet_workers ? 0 : config_.fleet_workers - used;
  active->jobs_allocated = std::max<std::size_t>(
      1, std::min({active->submission.jobs, config_.max_campaign_jobs,
                   std::max<std::size_t>(1, available)}));
  ActiveCampaign* raw = active.get();
  active_.push_back(std::move(active));
  raw->thread = std::thread([this, raw] { RunCampaignThread(raw); });
}

void ServiceCore::RunCampaignThread(ActiveCampaign* active) {
  ExecutionRequest request;
  request.db_dir = CampaignDbDir(active->submission.name);
  request.config_text = active->submission.config_text;
  request.jobs = active->jobs_allocated;
  request.controller = &active->controller;
  request.progress = [this, active](core::ProgressInfo info) {
    std::lock_guard<std::mutex> lock(mutex_);
    active->progress = std::move(info);
  };
  const auto summary = ExecuteSubmission(request);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Drained: the journal row stays "running" so the next daemon life
    // resumes it. Anything journalled here is one committed transition.
    if (!active->controller.drain_requested()) {
      Status journalled = Status::Ok();
      if (!summary.ok()) {
        journalled = journal_->MarkFailed(active->submission.id,
                                          summary.status().ToString());
      } else if (active->cancelled) {
        journalled = journal_->MarkCancelled(active->submission.id);
      } else {
        journalled = journal_->MarkCompleted(active->submission.id);
      }
      (void)journalled;  // journal errors must not tear down the fleet
    }
    active->finished = true;
  }
  wake_.notify_all();
}

void ServiceCore::SchedulerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!draining_) {
    // Reap finished campaign threads so their fleet workers free up.
    for (auto it = active_.begin(); it != active_.end();) {
      if ((*it)->finished && (*it)->thread.joinable()) {
        std::thread finished = std::move((*it)->thread);
        lock.unlock();
        finished.join();
        lock.lock();
        it = active_.erase(it);
      } else {
        ++it;
      }
    }
    // Claim while workers are free. Each claim is one committed journal
    // transition; a crash right after it resumes the campaign next life.
    while (!draining_ && JobsInUseLocked() < config_.fleet_workers) {
      auto claimed = journal_->ClaimNext();
      if (!claimed.ok() || !claimed->has_value()) break;
      LaunchCampaign(std::move(**claimed));
    }
    wake_.wait_for(lock, 20ms);
  }
}

void ServiceCore::Drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (drained_) return;
    draining_ = true;
    for (const auto& active : active_) {
      if (!active->finished) active->controller.Drain();
    }
  }
  wake_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  // The scheduler has exited; campaign threads finish at their next
  // experiment boundary.
  for (const auto& active : active_) {
    if (active->thread.joinable()) active->thread.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  active_.clear();
  drained_ = true;
}

// ---------------------------------------------------------------------------
// ServiceServer
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ServiceServer>> ServiceServer::Start(
    ServiceCore* core, const std::string& socket_path,
    std::function<void()> on_drain) {
  std::unique_ptr<ServiceServer> server(
      new ServiceServer(core, std::move(on_drain)));
  ASSIGN_OR_RETURN(server->listener_, UnixSocket::Listen(socket_path));
  server->accept_thread_ = std::thread([ptr = server.get()] {
    ptr->AcceptLoop();
  });
  return server;
}

ServiceServer::~ServiceServer() { Shutdown(); }

void ServiceServer::Shutdown() {
  if (shutdown_.exchange(true)) return;
  listener_.Shutdown();
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    connection->socket->Shutdown();  // wake a RecvFrame-blocked thread
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void ServiceServer::AcceptLoop() {
  while (!shutdown_) {
    // Reap before blocking so a burst of short-lived clients (status
    // polls, benches) frees its fds and threads as the next client
    // arrives instead of accumulating for the daemon's lifetime.
    ReapFinishedConnections();
    int accept_errno = 0;
    auto connection = listener_.Accept(&accept_errno);
    if (!connection.ok()) {
      if (shutdown_) break;  // Shutdown() closed the listener
      // Out of fds (EMFILE/ENFILE) or kernel buffers: transient. Back
      // off — reaping above frees fds — and keep serving; a daemon
      // that stops accepting forever over a poll flood is dead to its
      // clients while its campaigns still run.
      if (accept_errno == EMFILE || accept_errno == ENFILE ||
          accept_errno == ENOBUFS || accept_errno == ENOMEM) {
        std::this_thread::sleep_for(10ms);
        continue;
      }
      break;  // the listener itself is broken
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) break;
    auto entry = std::make_unique<Connection>();
    entry->socket = std::make_shared<UnixSocket>(std::move(*connection));
    Connection* raw = entry.get();
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
    connections_.push_back(std::move(entry));
  }
}

void ServiceServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock; `done` means the thread is past its last
  // shared access, so these joins return immediately.
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void ServiceServer::ServeConnection(Connection* connection) {
  // One request frame -> one (or, for watch, many) response frames.
  // Any client death — clean close, mid-frame kill — just ends this
  // loop; the campaigns it submitted or watched keep running.
  const UnixSocket& socket = *connection->socket;
  while (!shutdown_) {
    auto frame = socket.RecvFrame();
    if (!frame.ok()) break;
    const std::string reply = HandleFrame(*frame, socket);
    if (!reply.empty() && !socket.SendFrame(reply).ok()) break;
  }
  // Close eagerly so the fd frees now, not at reap time. Skipped during
  // shutdown: Shutdown() is walking the list calling socket->Shutdown()
  // and close would race the fd out from under it.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!shutdown_) connection->socket->Close();
  }
  connection->done = true;
}

std::string ServiceServer::HandleFrame(const std::string& frame,
                                       const UnixSocket& connection) {
  auto request = ParseRequest(frame);
  if (!request.ok()) return FormatError(request.status());

  if (request->verb == "ping") return FormatOk("pong");

  if (request->verb == "submit") {
    auto id = core_->Submit(request->body);
    if (!id.ok()) return FormatError(id.status());
    return FormatOk("id " + std::to_string(*id));
  }

  if (request->verb == "status") {
    if (request->has_id) {
      auto status = core_->GetStatus(request->id);
      if (!status.ok()) return FormatError(status.status());
      return FormatOk(StrFormat(
          "%llu %s %s %zu/%zu jobs=%zu",
          static_cast<unsigned long long>(status->submission.id),
          status->submission.name.c_str(),
          status->submission.state.c_str(), status->experiments_done,
          status->experiments_total, status->jobs_allocated));
    }
    std::string listing;
    for (const SubmissionStatus& status : core_->List()) {
      listing += StrFormat(
          "%llu %s %s %zu/%zu jobs=%zu\n",
          static_cast<unsigned long long>(status.submission.id),
          status.submission.name.c_str(),
          status.submission.state.c_str(), status.experiments_done,
          status.experiments_total, status.jobs_allocated);
    }
    return FormatOk(listing.empty() ? "empty" : "\n" + listing);
  }

  if (request->verb == "cancel") {
    if (!request->has_id) return FormatError(InvalidArgumentError("cancel <id>"));
    const Status status = core_->Cancel(request->id);
    return status.ok() ? FormatOk("cancelling") : FormatError(status);
  }
  if (request->verb == "pause") {
    if (!request->has_id) return FormatError(InvalidArgumentError("pause <id>"));
    const Status status = core_->Pause(request->id);
    return status.ok() ? FormatOk("paused") : FormatError(status);
  }
  if (request->verb == "unpause") {
    if (!request->has_id) {
      return FormatError(InvalidArgumentError("unpause <id>"));
    }
    const Status status = core_->Unpause(request->id);
    return status.ok() ? FormatOk("running") : FormatError(status);
  }

  if (request->verb == "watch") {
    if (!request->has_id) return FormatError(InvalidArgumentError("watch <id>"));
    // Stream progress until the journal state is terminal. Errors on
    // the connection just end the stream; the campaign is unaffected.
    for (;;) {
      auto status = core_->GetStatus(request->id);
      if (!status.ok()) return FormatError(status.status());
      const std::string& state = status->submission.state;
      if (state != kStateQueued && state != kStateRunning) {
        return "end " + state;
      }
      if (!connection
               .SendFrame(StrFormat("progress %zu %zu %zu",
                                    status->experiments_done,
                                    status->experiments_total,
                                    status->faults_injected))
               .ok()) {
        return std::string();
      }
      std::this_thread::sleep_for(50ms);
      if (shutdown_) return std::string();
    }
  }

  if (request->verb == "drain") {
    if (on_drain_) on_drain_();
    return FormatOk("draining");
  }

  return FormatError(
      InvalidArgumentError("unknown verb '" + request->verb + "'"));
}

}  // namespace goofi::service
