// The goofi_serve wire protocol: framed text messages over a local
// Unix-domain socket (util/socket.h supplies the framing).
//
// A request frame is one verb line, optionally followed by a newline
// and a body:
//
//   ping
//   submit\n<campaign ini text>
//   status            status <id>
//   cancel <id>       pause <id>        unpause <id>
//   watch <id>
//   drain
//
// A response frame starts with "ok" or "error <CODE>":
//
//   ok <detail...>
//   error QUEUE_FULL submission queue is full (...)
//
// `watch` is the one streaming verb: the daemon keeps the connection
// and sends "progress <done> <total> <faults>" frames until the
// campaign reaches a terminal journal state, then "end <state>" —
// closing the client mid-stream never affects the campaign (the run
// belongs to the daemon's fleet, not to the connection).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace goofi::service {

struct Request {
  std::string verb;
  std::uint64_t id = 0;   // verbs taking an <id> argument
  bool has_id = false;
  std::string body;       // submit: the campaign ini
};

Result<Request> ParseRequest(std::string_view frame);

// "ok" / "ok <detail>".
std::string FormatOk(const std::string& detail = "");
// "error <CODE> <message>" from a Status (never from an OK status).
std::string FormatError(const Status& status);
// Parse a response: OK -> detail text, error -> a Status carrying the
// code and message (the client CLI surfaces it verbatim).
Result<std::string> ParseResponse(std::string_view frame);

}  // namespace goofi::service
