#include "service/journal.h"

#include <algorithm>
#include <filesystem>

#include "db/schema.h"

namespace goofi::service {

using db::Column;
using db::ColumnType;
using db::Row;
using db::TableSchema;
using db::Value;

namespace {

Column MakeColumn(const char* name, ColumnType type, bool not_null,
                  bool primary_key = false, bool unique = false) {
  Column column;
  column.name = name;
  column.type = type;
  column.not_null = not_null || primary_key;
  column.unique = unique || primary_key;
  column.primary_key = primary_key;
  return column;
}

Result<TableSchema> QueueSchema() {
  TableSchema schema(kSubmissionQueueTable);
  RETURN_IF_ERROR(schema.AddColumn(
      MakeColumn("id", ColumnType::kInteger, true, /*primary_key=*/true)));
  RETURN_IF_ERROR(schema.AddColumn(MakeColumn(
      "name", ColumnType::kText, true, false, /*unique=*/true)));
  RETURN_IF_ERROR(
      schema.AddColumn(MakeColumn("config", ColumnType::kText, true)));
  RETURN_IF_ERROR(
      schema.AddColumn(MakeColumn("jobs", ColumnType::kInteger, true)));
  RETURN_IF_ERROR(
      schema.AddColumn(MakeColumn("state", ColumnType::kText, true)));
  RETURN_IF_ERROR(
      schema.AddColumn(MakeColumn("error", ColumnType::kText, false)));
  return schema;
}

Result<TableSchema> MetaSchema() {
  TableSchema schema(kServiceMetaTable);
  RETURN_IF_ERROR(schema.AddColumn(
      MakeColumn("key", ColumnType::kText, true, /*primary_key=*/true)));
  RETURN_IF_ERROR(
      schema.AddColumn(MakeColumn("value", ColumnType::kText, true)));
  return schema;
}

Submission FromRow(const Row& row) {
  Submission submission;
  submission.id = static_cast<std::uint64_t>(row[0].AsInteger());
  submission.name = row[1].AsText();
  submission.config_text = row[2].AsText();
  submission.jobs = static_cast<std::size_t>(row[3].AsInteger());
  submission.state = row[4].AsText();
  submission.error = row[5].is_null() ? std::string() : row[5].AsText();
  return submission;
}

}  // namespace

Result<SubmissionJournal> SubmissionJournal::Open(
    const std::string& dir, std::size_t queue_limit,
    db::wal::WalFileFactory factory) {
  if (queue_limit == 0) {
    return InvalidArgumentError("journal queue limit must be >= 1");
  }
  namespace fs = std::filesystem;
  db::Database database;
  const bool exists = fs::exists(fs::path(dir) / "wal.log") ||
                      fs::exists(fs::path(dir) / "snapshot.manifest");
  if (exists) {
    // Replays committed transitions and truncates any torn tail — the
    // SIGKILL recovery path.
    ASSIGN_OR_RETURN(database, db::Database::Open(dir, std::move(factory)));
  } else {
    ASSIGN_OR_RETURN(TableSchema queue, QueueSchema());
    ASSIGN_OR_RETURN(TableSchema meta, MetaSchema());
    RETURN_IF_ERROR(database.CreateTable(std::move(queue)));
    RETURN_IF_ERROR(database.CreateTable(std::move(meta)));
    RETURN_IF_ERROR(database.Insert(
        kServiceMetaTable,
        {Value::Text_("journal_format"), Value::Text_("1")}));
    RETURN_IF_ERROR(database.AttachWal(dir, std::move(factory)));
    RETURN_IF_ERROR(database.Commit());
  }
  if (!database.HasTable(kSubmissionQueueTable) ||
      !database.HasTable(kServiceMetaTable)) {
    return DataLossError("'" + dir + "' is not a submission journal");
  }
  SubmissionJournal journal(std::move(database), queue_limit);
  const db::Table* queue =
      journal.database_.FindTable(kSubmissionQueueTable);
  for (const Row& row : queue->rows()) {
    journal.next_id_ = std::max(
        journal.next_id_, static_cast<std::uint64_t>(row[0].AsInteger()) + 1);
  }
  return journal;
}

Result<std::uint64_t> SubmissionJournal::Submit(
    const std::string& name, const std::string& config_text,
    std::size_t jobs) {
  if (name.empty()) return InvalidArgumentError("campaign name is empty");
  const db::Table* queue = database_.FindTable(kSubmissionQueueTable);
  if (queue->FindByUnique(1, Value::Text_(name)).has_value()) {
    return AlreadyExistsError("campaign '" + name +
                              "' was already submitted");
  }
  if (ActiveCount() >= queue_limit_) {
    return QueueFullError(
        "submission queue is full (" + std::to_string(queue_limit_) +
        " active); retry after a campaign finishes");
  }
  const std::uint64_t id = next_id_++;
  RETURN_IF_ERROR(database_.Insert(
      kSubmissionQueueTable,
      {Value::Integer(static_cast<std::int64_t>(id)), Value::Text_(name),
       Value::Text_(config_text),
       Value::Integer(static_cast<std::int64_t>(jobs)),
       Value::Text_(kStateQueued), Value::Null()}));
  RETURN_IF_ERROR(database_.Commit());
  return id;
}

Result<std::optional<Submission>> SubmissionJournal::ClaimNext() {
  const db::Table* queue = database_.FindTable(kSubmissionQueueTable);
  const Row* oldest = nullptr;
  for (const Row& row : queue->rows()) {
    if (row[4].AsText() != kStateQueued) continue;
    if (oldest == nullptr || row[0].AsInteger() < (*oldest)[0].AsInteger()) {
      oldest = &row;
    }
  }
  if (oldest == nullptr) return std::optional<Submission>();
  Submission claimed = FromRow(*oldest);
  RETURN_IF_ERROR(SetState(claimed.id, kStateRunning, ""));
  claimed.state = kStateRunning;
  return std::optional<Submission>(std::move(claimed));
}

Status SubmissionJournal::SetState(std::uint64_t id, const std::string& state,
                                   const std::string& error) {
  const auto updated = database_.Update(
      kSubmissionQueueTable,
      [&](const Row& row) {
        return row[0].AsInteger() == static_cast<std::int64_t>(id);
      },
      {{4, Value::Text_(state)},
       {5, error.empty() ? Value::Null() : Value::Text_(error)}});
  RETURN_IF_ERROR(updated.status());
  if (*updated == 0) {
    return NotFoundError("no submission " + std::to_string(id));
  }
  return database_.Commit();
}

Status SubmissionJournal::MarkCompleted(std::uint64_t id) {
  return SetState(id, kStateCompleted, "");
}

Status SubmissionJournal::MarkFailed(std::uint64_t id,
                                     const std::string& error) {
  return SetState(id, kStateFailed, error);
}

Status SubmissionJournal::MarkCancelled(std::uint64_t id) {
  ASSIGN_OR_RETURN(const Submission current, Find(id));
  if (current.state != kStateQueued && current.state != kStateRunning) {
    return FailedPreconditionError("submission " + std::to_string(id) +
                                   " is already " + current.state);
  }
  return SetState(id, kStateCancelled, "");
}

Result<Submission> SubmissionJournal::Find(std::uint64_t id) const {
  const db::Table* queue = database_.FindTable(kSubmissionQueueTable);
  const auto index =
      queue->FindByUnique(0, Value::Integer(static_cast<std::int64_t>(id)));
  if (!index) return NotFoundError("no submission " + std::to_string(id));
  return FromRow(queue->row(*index));
}

std::vector<Submission> SubmissionJournal::All() const {
  std::vector<Submission> out;
  const db::Table* queue = database_.FindTable(kSubmissionQueueTable);
  out.reserve(queue->row_count());
  for (const Row& row : queue->rows()) out.push_back(FromRow(row));
  std::sort(out.begin(), out.end(),
            [](const Submission& a, const Submission& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<Submission> SubmissionJournal::InState(
    const std::string& state) const {
  std::vector<Submission> out;
  for (Submission& submission : All()) {
    if (submission.state == state) out.push_back(std::move(submission));
  }
  return out;
}

std::size_t SubmissionJournal::ActiveCount() const {
  std::size_t count = 0;
  const db::Table* queue = database_.FindTable(kSubmissionQueueTable);
  for (const Row& row : queue->rows()) {
    const std::string& state = row[4].AsText();
    if (state == kStateQueued || state == kStateRunning) ++count;
  }
  return count;
}

}  // namespace goofi::service
