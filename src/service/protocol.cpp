#include "service/protocol.h"

#include <array>

#include "util/strings.h"

namespace goofi::service {

namespace {

// Verbs that take a numeric <id> argument.
bool TakesId(const std::string& verb) {
  return verb == "status" || verb == "cancel" || verb == "pause" ||
         verb == "unpause" || verb == "watch";
}

constexpr std::array<ErrorCode, 13> kWireCodes = {
    ErrorCode::kInvalidArgument,    ErrorCode::kNotFound,
    ErrorCode::kAlreadyExists,      ErrorCode::kFailedPrecondition,
    ErrorCode::kOutOfRange,         ErrorCode::kUnimplemented,
    ErrorCode::kInternal,           ErrorCode::kDataLoss,
    ErrorCode::kConstraintViolation, ErrorCode::kParseError,
    ErrorCode::kTargetFault,        ErrorCode::kIo,
    ErrorCode::kQueueFull,
};

ErrorCode CodeFromName(const std::string& name) {
  for (const ErrorCode code : kWireCodes) {
    if (name == ErrorCodeName(code)) return code;
  }
  return ErrorCode::kInternal;  // unknown code from a newer daemon
}

}  // namespace

Result<Request> ParseRequest(std::string_view frame) {
  Request request;
  const std::size_t newline = frame.find('\n');
  std::string line(frame.substr(0, newline));
  if (newline != std::string_view::npos) {
    request.body = std::string(frame.substr(newline + 1));
  }
  const std::vector<std::string> words = SplitString(line, ' ');
  if (words.empty() || words[0].empty()) {
    return InvalidArgumentError("empty request");
  }
  request.verb = words[0];
  if (TakesId(request.verb) && words.size() > 1) {
    const auto id = ParseUint64(words[1]);
    if (!id) {
      return InvalidArgumentError("bad id '" + words[1] + "' for " +
                                  request.verb);
    }
    request.id = *id;
    request.has_id = true;
  }
  return request;
}

std::string FormatOk(const std::string& detail) {
  return detail.empty() ? "ok" : "ok " + detail;
}

std::string FormatError(const Status& status) {
  return std::string("error ") + ErrorCodeName(status.code()) + " " +
         status.message();
}

Result<std::string> ParseResponse(std::string_view frame) {
  if (frame == "ok") return std::string();
  if (StartsWith(frame, "ok ")) return std::string(frame.substr(3));
  if (StartsWith(frame, "error ")) {
    const std::string rest(frame.substr(6));
    const std::size_t space = rest.find(' ');
    const std::string code = rest.substr(0, space);
    const std::string message =
        space == std::string::npos ? "" : rest.substr(space + 1);
    return Status(CodeFromName(code), message);
  }
  return DataLossError("malformed response frame");
}

}  // namespace goofi::service
