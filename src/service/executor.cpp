#include "service/executor.h"

#include <filesystem>
#include <memory>

#include "core/goofi.h"
#include "util/config.h"
#include "util/strings.h"

namespace goofi::service {

namespace fs = std::filesystem;

namespace {

// Same open-or-create policy as goofi_tool: a fresh directory becomes a
// WAL database with the GOOFI schema committed as its first batch.
Result<db::Database> OpenOrCreate(const std::string& dir) {
  if (fs::exists(fs::path(dir) / "wal.log") ||
      fs::exists(fs::path(dir) / "snapshot.manifest") ||
      fs::exists(fs::path(dir) / "manifest.txt")) {
    ASSIGN_OR_RETURN(db::Database database, db::Database::Open(dir));
    // A kill between AttachWal and the first commit recovers to an
    // empty database; redo the schema commit the first life never
    // landed (the same records in the same order, so the log bytes
    // stay on the one-shot trajectory).
    if (!database.HasTable(core::kCampaignDataTable)) {
      RETURN_IF_ERROR(core::CreateGoofiSchema(database));
      RETURN_IF_ERROR(database.Commit());
    }
    return database;
  }
  db::Database database;
  RETURN_IF_ERROR(database.AttachWal(dir));
  RETURN_IF_ERROR(core::CreateGoofiSchema(database));
  RETURN_IF_ERROR(database.Commit());
  return database;
}

Result<std::unique_ptr<target::TargetSystemInterface>> MakeTarget(
    const std::string& name, const std::string& workload_name) {
  core::TargetRegistry& registry = core::TargetRegistry::Instance();
  core::RegisterBuiltinTargets(registry);
  ASSIGN_OR_RETURN(auto target, registry.Create(name));
  if (!workload_name.empty()) {
    if (EndsWith(workload_name, ".workload")) {
      ASSIGN_OR_RETURN(target::WorkloadSpec workload,
                       target::LoadWorkloadSpecFromFile(workload_name));
      RETURN_IF_ERROR(target->SetWorkload(std::move(workload)));
    } else {
      ASSIGN_OR_RETURN(target::WorkloadSpec workload,
                       target::GetBuiltinWorkload(workload_name));
      RETURN_IF_ERROR(target->SetWorkload(std::move(workload)));
    }
  }
  return target;
}

Result<core::CampaignConfig> ParseSubmissionConfig(
    const std::string& config_text, std::string* workload_file) {
  ASSIGN_OR_RETURN(const Config file, Config::Parse(config_text));
  const ConfigSection* section = file.FindSection("campaign");
  if (section == nullptr) {
    return InvalidArgumentError("submission has no [campaign] section");
  }
  ASSIGN_OR_RETURN(core::CampaignConfig config,
                   core::ParseCampaignConfig(*section));
  if (workload_file != nullptr) {
    *workload_file = section->GetStringOr("workload_file", "");
  }
  return config;
}

}  // namespace

Result<SubmissionInfo> InspectSubmission(const std::string& config_text) {
  ASSIGN_OR_RETURN(const core::CampaignConfig config,
                   ParseSubmissionConfig(config_text, nullptr));
  SubmissionInfo info;
  info.name = config.name;
  info.jobs = config.jobs;
  // Campaign names become database directory names under the service
  // root; refuse anything that would escape it.
  bool valid = !config.name.empty() && config.name.front() != '.';
  for (const char ch : config.name) {
    valid = valid && ((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '-' || ch == '_' ||
                      ch == '.');
  }
  if (!valid) {
    return InvalidArgumentError(
        "campaign name '" + config.name +
        "' must be [A-Za-z0-9._-] and not start with '.'");
  }
  return info;
}

Result<core::CampaignSummary> ExecuteSubmission(
    const ExecutionRequest& request) {
  std::string workload_file;
  ASSIGN_OR_RETURN(const core::CampaignConfig config,
                   ParseSubmissionConfig(request.config_text,
                                         &workload_file));
  ASSIGN_OR_RETURN(db::Database database, OpenOrCreate(request.db_dir));

  // Resume is decided by the results database, not by daemon memory: a
  // stored campaign row means an earlier life already started this run.
  const db::Table* campaigns = database.FindTable(core::kCampaignDataTable);
  const bool resume =
      campaigns != nullptr &&
      campaigns->FindByUnique(0, db::Value::Text_(config.name)).has_value();
  if (!resume) {
    ASSIGN_OR_RETURN(auto target, MakeTarget(config.target, ""));
    RETURN_IF_ERROR(core::RegisterTargetSystem(database, *target,
                                               "goofi-tool-card", ""));
    RETURN_IF_ERROR(core::StoreCampaign(database, config));
  }

  target::TargetFactory factory = [name = config.target, workload_file]() {
    return MakeTarget(name, workload_file);
  };
  const std::size_t jobs = request.jobs == 0 ? 1 : request.jobs;
  const bool wal = database.wal_attached();

  auto run = [&]() -> Result<core::CampaignSummary> {
    if (jobs > 1) {
      core::ParallelCampaignRunner runner(&database, factory, jobs);
      runner.set_controller(request.controller);
      if (request.progress) runner.set_progress_callback(request.progress);
      if (wal) runner.set_checkpoint(request.db_dir, kCommitEveryExperiments);
      return resume ? runner.Resume(config.name) : runner.Run(config.name);
    }
    ASSIGN_OR_RETURN(auto target, MakeTarget(config.target, workload_file));
    core::CampaignRunner runner(&database, target.get());
    runner.set_target_factory(factory);
    runner.set_controller(request.controller);
    if (request.progress) runner.set_progress_callback(request.progress);
    if (wal) runner.set_checkpoint(request.db_dir, kCommitEveryExperiments);
    return resume ? runner.Resume(config.name) : runner.Run(config.name);
  };
  ASSIGN_OR_RETURN(core::CampaignSummary summary, run());

  // Drain: leave the database exactly at its last cadence commit. The
  // closing Persist would flush the partial batch and shift every
  // later commit point, breaking byte-equality with one-shot runs.
  if (request.controller != nullptr &&
      request.controller->drain_requested()) {
    return summary;
  }
  RETURN_IF_ERROR(database.Persist(request.db_dir));
  return summary;
}

}  // namespace goofi::service
