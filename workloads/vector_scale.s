; vector_scale: scale a 16-word vector by 4 with saturation at 100000,
; write the scaled vector plus a checksum to the output region.
;
; A user-provided workload, assembled by the tool at campaign time (see
; workloads/vector_scale.workload and examples/custom_workload.cpp).
.entry start
start:
  la sp, 0x24000
  la r1, vec_in
  la r2, vec_out
  li r3, 16             ; element count
  li r4, 0              ; index
  li r10, 0             ; checksum
vs_loop:
  bge r4, r3, vs_done
  slli r5, r4, 2
  add r6, r1, r5
  ld r7, [r6]
  slli r7, r7, 2        ; x4
  li r8, 100000         ; saturation limit
  blt r7, r8, vs_ok
  mov r7, r8
vs_ok:
  add r9, r2, r5
  st r7, [r9]
  add r10, r10, r7
  addi r4, r4, 1
  b vs_loop
vs_done:
  la r5, vec_csum
  st r10, [r5]
  mov r1, r10
  sys 4                 ; emit checksum
  halt

.org 0x10000
vec_in:
  .word 12, 99, 25000, 7, 31000, 450, 3, 88
  .word 1500, 26001, 0, 64, 9999, 2, 777, 24999
.org 0x10200
vec_out:
  .space 64
vec_csum:
  .space 4
